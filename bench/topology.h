// The experimental topology of the paper's Figure 2 (F2):
//
//     Customer(s) ----(customer-provider link)---- Provider ---- Rest of the
//        AS 1                                    AS 3 (DiCE)      Internet
//                                                                 (feed, AS 65000)
//
// The provider is the DiCE-enabled router. It loads a full synthetic
// RouteViews-style table from the feed and applies (possibly misconfigured)
// customer route filtering on the customer session — the setup every
// evaluation bench (E1-E4) runs on.
//
// Both topologies here run serial (the default) or sharded: set sim_shards
// to N > 0 and the simulation executes on a net::ShardedEventLoop with N
// shards, which the F1h bench and the sharded_sim test wall hold to
// bit-identical results against the serial baseline.

#ifndef BENCH_TOPOLOGY_H_
#define BENCH_TOPOLOGY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bgp/router.h"
#include "src/net/sharded_event_loop.h"
#include "src/persist/router_state_snapshot.h"
#include "src/trace/feed.h"
#include "src/trace/trace.h"
#include "src/util/frame.h"
#include "src/util/logging.h"

namespace dice::bench {

// Which customer-filtering mistake the provider is configured with (§4.2:
// "its policy either fails to filter customer routes or has erroneous
// filters").
enum class Misconfig {
  kCorrect,         // proper customer prefix-list; the negative control
  kErroneousEntry,  // fat-fingered extra prefix-list entry leaking foreign space
  kTooBroad,        // a filter term matching far more than the customer owns
  kNoFilter,        // no customer filtering at all (the PCCW mistake)
};

inline const char* MisconfigName(Misconfig m) {
  switch (m) {
    case Misconfig::kCorrect:
      return "correct-filter";
    case Misconfig::kErroneousEntry:
      return "erroneous-entry";
    case Misconfig::kTooBroad:
      return "too-broad-term";
    case Misconfig::kNoFilter:
      return "no-filter";
  }
  return "?";
}

// Canonical digest of a set of routers: the serialized checkpoint bytes of
// each (deterministic by construction), concatenated in the given order.
// Comparing digests across serial and sharded runs is the repo's
// bit-identity check.
inline uint32_t RouterStateDigest(const std::vector<const bgp::Router*>& routers) {
  Bytes all;
  for (const bgp::Router* router : routers) {
    Bytes one = persist::SerializeRouterState(router->CheckpointState(), 0);
    all.insert(all.end(), one.begin(), one.end());
  }
  return BodyChecksum(all.data(), all.size());
}

struct Fig2Options {
  size_t prefixes = 50000;   // paper scale: 319355 (pass --prefixes=319355)
  uint64_t seed = 1;
  Misconfig misconfig = Misconfig::kErroneousEntry;
  // Victim space the misconfiguration exposes (the YouTube /22 by default).
  const char* victim_space = "208.65.152.0/22";
  // Total customer /16 blocks in the prefix-list (10.1.0.0/16, 10.2.0.0/16,
  // ...). More entries mean more symbolic range checks per explored UPDATE —
  // the "multi-entry customer filter" knob of the exploration benches.
  size_t filter_entries = 1;
  // 0 = serial event loop; N > 0 = sharded simulation with N shards (nodes
  // fall to the default id % N partition).
  size_t sim_shards = 0;
};

class Fig2 {
 public:
  static constexpr net::NodeId kCustomerNode = 1;
  static constexpr net::NodeId kProviderNode = 2;
  static constexpr net::NodeId kFeedNode = 3;

  explicit Fig2(const Fig2Options& options)
      : options_(options), generator_(MakeGeneratorOptions(options)) {
    if (options.sim_shards > 0) {
      net::ShardedEventLoop::Options sharded_options;
      sharded_options.shards = static_cast<uint32_t>(options.sim_shards);
      sharded_ = std::make_unique<net::ShardedEventLoop>(sharded_options);
      net_ = std::make_unique<net::Network>(sharded_.get());
    } else {
      net_ = std::make_unique<net::Network>(&loop_);
    }

    // --- Provider (the DiCE-enabled router) --------------------------------
    bgp::RouterConfig provider;
    provider.name = "provider";
    provider.local_as = 3;
    provider.router_id = *bgp::Ipv4Address::Parse("10.0.0.3");

    bgp::PrefixList customers;
    customers.name = "customers";
    // 10.1/16 .. 10.254/16 at most: the second octet must stay a valid byte.
    const size_t entry_count = std::clamp<size_t>(options.filter_entries, 1, 254);
    for (size_t k = 0; k < entry_count; ++k) {
      std::string block = "10." + std::to_string(1 + k) + ".0.0/16";
      customers.entries.push_back(bgp::PrefixListEntry{*bgp::Prefix::Parse(block), 0, 24});
    }
    if (options.misconfig == Misconfig::kErroneousEntry) {
      // The fat-fingered entry: the victim's space in the *customer* list.
      customers.entries.push_back(
          bgp::PrefixListEntry{*bgp::Prefix::Parse(options.victim_space), 0, 24});
    }
    DICE_CHECK(provider.policies.AddPrefixList(std::move(customers)).ok());

    bgp::Filter filter = bgp::MakeCustomerImportFilter("customer-in", "customers");
    if (options.misconfig == Misconfig::kTooBroad) {
      // An extra term accepting a huge range (e.g. a /6 instead of a /22).
      bgp::FilterTerm broad;
      broad.name = "broad-mistake";
      bgp::Match m;
      m.kind = bgp::MatchKind::kPrefixWithin;
      m.prefix = *bgp::Prefix::Parse("192.0.0.0/6");
      broad.matches.push_back(m);
      bgp::Action accept_action;
      accept_action.kind = bgp::ActionKind::kAccept;
      broad.actions.push_back(accept_action);
      filter.terms.insert(filter.terms.begin() + 1, std::move(broad));
    }
    DICE_CHECK(provider.policies.AddFilter(std::move(filter)).ok());

    bgp::NeighborConfig customer_neighbor;
    customer_neighbor.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer_neighbor.remote_as = 1;
    if (options.misconfig != Misconfig::kNoFilter) {
      customer_neighbor.import_filter = "customer-in";
    }
    provider.neighbors.push_back(customer_neighbor);

    bgp::NeighborConfig feed_neighbor;
    feed_neighbor.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    feed_neighbor.remote_as = 65000;
    provider.neighbors.push_back(feed_neighbor);

    // --- Customer -----------------------------------------------------------
    bgp::RouterConfig customer;
    customer.name = "customer";
    customer.local_as = 1;
    customer.router_id = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer.networks.push_back(*bgp::Prefix::Parse("10.1.7.0/24"));
    customer.networks.push_back(*bgp::Prefix::Parse("10.1.8.0/24"));
    bgp::NeighborConfig upstream;
    upstream.address = *bgp::Ipv4Address::Parse("10.0.0.3");
    upstream.remote_as = 3;
    customer.neighbors.push_back(upstream);

    customer_ = std::make_unique<bgp::Router>(kCustomerNode, std::move(customer), net_.get());
    provider_ = std::make_unique<bgp::Router>(kProviderNode, std::move(provider), net_.get());
    feed_ = std::make_unique<trace::BgpFeedNode>(kFeedNode, "internet", 65000,
                                                 *bgp::Ipv4Address::Parse("10.0.0.9"), net_.get());

    net_->AddNode(customer_.get());
    net_->AddNode(provider_.get());
    net_->AddNode(feed_.get());

    customer_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.3"), kProviderNode);
    provider_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.1"), kCustomerNode);
    provider_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.9"), kFeedNode);
    feed_->SetPeer(kProviderNode);

    customer_->Start();
    provider_->Start();
    net_->Connect(kCustomerNode, kProviderNode, net::kMillisecond);
    net_->Connect(kProviderNode, kFeedNode, net::kMillisecond);
    RunSim(5 * net::kSecond);
    DICE_CHECK(provider_->Established(kCustomerNode));
    DICE_CHECK(provider_->Established(kFeedNode));
  }

  // Replays the full-table dump ("loads 319,355 prefixes from the rest of the
  // Internet", §4) into the provider. Returns UPDATE messages processed.
  //
  // Note: the loop is run for bounded simulated time, not drained — session
  // keepalive timers re-arm forever, so an unbounded Run() never returns.
  size_t LoadTable() {
    trace::Trace dump = generator_.FullDump();
    trace::ScheduleTrace(net_.get(), feed_.get(), dump, sim_now());
    RunSim(20 * net::kSecond);
    return dump.events.size();
  }

  // Runs the simulation for `duration`, letting in-flight traffic settle.
  void Settle(net::SimTime duration = 5 * net::kSecond) { RunSim(duration); }

  // Advances simulated time by `duration` on whichever loop drives this
  // topology; accumulates the executed-event count for identity checks.
  size_t RunSim(net::SimTime duration) {
    size_t executed =
        sharded_ != nullptr ? sharded_->RunFor(duration) : loop_.RunFor(duration);
    events_executed_ += executed;
    return executed;
  }

  net::SimTime sim_now() const { return sharded_ != nullptr ? sharded_->now() : loop_.now(); }
  uint64_t events_executed() const { return events_executed_; }

  // A 15-minute (or custom) low-rate update trace, as in the paper.
  trace::Trace MakeUpdateTrace() { return generator_.UpdateTrace(); }

  // The seed input DiCE explores: the customer's most recent UPDATE.
  bgp::UpdateMessage CustomerSeedUpdate() const {
    auto it = provider_->last_updates().find(kCustomerNode);
    if (it != provider_->last_updates().end() && !it->second.nlri.empty()) {
      return it->second;
    }
    bgp::UpdateMessage seed;
    seed.attrs.origin = bgp::Origin::kIgp;
    seed.attrs.as_path = bgp::AsPath::Sequence({1, 100});
    seed.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
    seed.nlri.push_back(*bgp::Prefix::Parse("10.1.7.0/24"));
    return seed;
  }

  // Digest over every router's checkpointed state, in node-id order.
  uint32_t StateDigest() const {
    return RouterStateDigest({customer_.get(), provider_.get()});
  }

  // The serial loop; only meaningful when sim_shards == 0.
  net::EventLoop& loop() {
    DICE_CHECK(sharded_ == nullptr) << "Fig2::loop() on a sharded topology — use sharded()";
    return loop_;
  }
  // Null when the topology runs serial.
  net::ShardedEventLoop* sharded() { return sharded_.get(); }
  net::Network& net() { return *net_; }
  bgp::Router& provider() { return *provider_; }
  bgp::Router& customer() { return *customer_; }
  trace::BgpFeedNode& feed() { return *feed_; }
  trace::TraceGenerator& generator() { return generator_; }
  const Fig2Options& options() const { return options_; }

 private:
  static trace::TraceGeneratorOptions MakeGeneratorOptions(const Fig2Options& options) {
    trace::TraceGeneratorOptions gen;
    gen.seed = options.seed;
    gen.prefix_count = options.prefixes;
    return gen;
  }

  Fig2Options options_;
  net::EventLoop loop_;  // drives the simulation when sim_shards == 0
  std::unique_ptr<net::ShardedEventLoop> sharded_;
  std::unique_ptr<net::Network> net_;
  trace::TraceGenerator generator_;
  uint64_t events_executed_ = 0;
  std::unique_ptr<bgp::Router> customer_;
  std::unique_ptr<bgp::Router> provider_;
  std::unique_ptr<trace::BgpFeedNode> feed_;
};

// ---------------------------------------------------------------------------
// ScaleRing: the parameterized scale topology for the sharding benches.
//
// A ring of `ring` hub ASes, each with `fanout` leaf (stub) ASes; every leaf
// originates `prefixes_per_leaf` /24s out of 172.16.0.0/12, which then
// propagate around the ring. Many routers with genuinely concurrent traffic —
// unlike Fig2, whose three nodes leave most shards idle — so F1h's
// events-per-second speedup and the serial-vs-sharded identity wall both get
// a workload where every shard has routers to run.
//
// Partitioning keeps each hub on shard (hub index % shards) with all of its
// leaves, so cross-shard traffic is exactly the ring links (the smallest of
// which becomes the lookahead).
//
// Ring link i gets delay ring_delay * 2^i. The stagger is what makes the
// sharded run bit-identical to serial: the RIB stamps every installed route
// with a global arrival sequence, so identity requires that no node ever
// receives two RIB-changing messages at the same microsecond from different
// shards (the cross-shard merge could order them differently than the serial
// queue did). Power-of-two delays make every distinct arc of the ring have a
// distinct delay sum — a symmetric ring would instead deliver the two
// directions of every propagation wave simultaneously. Leaf links share one
// delay; leaves ride on their hub's shard, where serial insertion order is
// preserved exactly, so their collisions are harmless.
// ---------------------------------------------------------------------------

struct ScaleRingOptions {
  size_t ring = 8;                // hub count; clamped to [3, 12]
  size_t fanout = 4;              // leaves per hub
  size_t prefixes_per_leaf = 2;   // /24s each leaf originates
  net::SimTime ring_delay = 2 * net::kMillisecond;  // base hub<->hub delay
  net::SimTime leaf_delay = net::kMillisecond;      // hub<->leaf links
  size_t sim_shards = 0;          // 0 = serial event loop
};

class ScaleRing {
 public:
  explicit ScaleRing(const ScaleRingOptions& options)
      : options_(options),
        ring_(std::max<size_t>(options.ring, 3)),
        fanout_(options.fanout) {
    // 172.16.0.0/12 holds 2^12 /24s; each leaf needs its own block.
    DICE_CHECK_LE(ring_ * fanout_ * options.prefixes_per_leaf, size_t{4096})
        << "prefix space exhausted: shrink ring/fanout/prefixes_per_leaf";
    // The staggered ring delays grow as 2^i: cap the ring so the slowest link
    // stays in the seconds range (scale the topology through fanout instead).
    DICE_CHECK_LE(ring_, size_t{12}) << "ring too large — grow fanout instead";

    if (options.sim_shards > 0) {
      net::ShardedEventLoop::Options sharded_options;
      sharded_options.shards = static_cast<uint32_t>(options.sim_shards);
      sharded_ = std::make_unique<net::ShardedEventLoop>(sharded_options);
      // Assign before any router exists: session construction freezes the
      // partition. Leaves ride with their hub so only ring links cross shards.
      for (size_t i = 0; i < ring_; ++i) {
        uint32_t shard = static_cast<uint32_t>(i % options.sim_shards);
        sharded_->AssignNode(HubNode(i), shard);
        for (size_t j = 0; j < fanout_; ++j) {
          sharded_->AssignNode(LeafNode(i, j), shard);
        }
      }
      net_ = std::make_unique<net::Network>(sharded_.get());
    } else {
      net_ = std::make_unique<net::Network>(&loop_);
    }

    // --- Hub routers --------------------------------------------------------
    for (size_t i = 0; i < ring_; ++i) {
      bgp::RouterConfig config;
      config.name = "hub" + std::to_string(i);
      config.local_as = HubAs(i);
      config.router_id = Address(HubNode(i));
      AddNeighbor(&config, HubNode(Prev(i)), HubAs(Prev(i)));
      AddNeighbor(&config, HubNode(Next(i)), HubAs(Next(i)));
      for (size_t j = 0; j < fanout_; ++j) {
        AddNeighbor(&config, LeafNode(i, j), LeafAs(i, j));
      }
      routers_.push_back(
          std::make_unique<bgp::Router>(HubNode(i), std::move(config), net_.get()));
    }

    // --- Leaf routers -------------------------------------------------------
    size_t prefix_index = 0;
    for (size_t i = 0; i < ring_; ++i) {
      for (size_t j = 0; j < fanout_; ++j) {
        bgp::RouterConfig config;
        config.name = "leaf" + std::to_string(i) + "_" + std::to_string(j);
        config.local_as = LeafAs(i, j);
        config.router_id = Address(LeafNode(i, j));
        AddNeighbor(&config, HubNode(i), HubAs(i));
        for (size_t p = 0; p < options.prefixes_per_leaf; ++p) {
          config.networks.push_back(LeafPrefix(prefix_index++));
        }
        routers_.push_back(
            std::make_unique<bgp::Router>(LeafNode(i, j), std::move(config), net_.get()));
      }
    }

    for (const auto& router : routers_) {
      net_->AddNode(router.get());
    }

    // Peer registrations mirror the neighbor configs exactly.
    for (size_t i = 0; i < ring_; ++i) {
      bgp::Router* hub = router(HubNode(i));
      hub->RegisterPeerNode(Address(HubNode(Prev(i))), HubNode(Prev(i)));
      hub->RegisterPeerNode(Address(HubNode(Next(i))), HubNode(Next(i)));
      for (size_t j = 0; j < fanout_; ++j) {
        hub->RegisterPeerNode(Address(LeafNode(i, j)), LeafNode(i, j));
        router(LeafNode(i, j))->RegisterPeerNode(Address(HubNode(i)), HubNode(i));
      }
    }

    for (const auto& r : routers_) {
      r->Start();
    }
    for (size_t i = 0; i < ring_; ++i) {
      net_->Connect(HubNode(i), HubNode(Next(i)), RingLinkDelay(i));
      for (size_t j = 0; j < fanout_; ++j) {
        net_->Connect(HubNode(i), LeafNode(i, j), options.leaf_delay);
      }
    }
    // Establishment and full propagation take a few traversals of the ring;
    // the slowest staggered link dominates.
    RunSim(5 * net::kSecond + 6 * RingLinkDelay(ring_ - 1));
  }

  // Staggered: see the class comment for why the ring must be asymmetric.
  net::SimTime RingLinkDelay(size_t i) const {
    return options_.ring_delay * (net::SimTime{1} << i);
  }

  // --- Layout ---------------------------------------------------------------
  net::NodeId HubNode(size_t i) const { return static_cast<net::NodeId>(i + 1); }
  net::NodeId LeafNode(size_t i, size_t j) const {
    return static_cast<net::NodeId>(ring_ + 1 + i * fanout_ + j);
  }
  static bgp::AsNumber HubAs(size_t i) { return static_cast<bgp::AsNumber>(100 + i); }
  bgp::AsNumber LeafAs(size_t i, size_t j) const {
    return static_cast<bgp::AsNumber>(1000 + i * fanout_ + j);
  }
  static bgp::Ipv4Address Address(net::NodeId id) {
    return bgp::Ipv4Address((10u << 24) | id);
  }
  static bgp::Prefix LeafPrefix(size_t index) {
    uint32_t bits = (172u << 24) | (16u << 16) | (static_cast<uint32_t>(index) << 8);
    return bgp::Prefix::Make(bgp::Ipv4Address(bits), 24);
  }

  size_t ring() const { return ring_; }
  size_t fanout() const { return fanout_; }
  size_t node_count() const { return routers_.size(); }

  bgp::Router* router(net::NodeId id) {
    // Routers are stored hubs-first, then leaves, ids dense from 1.
    return routers_[id - 1].get();
  }

  // --- Execution ------------------------------------------------------------
  size_t RunSim(net::SimTime duration) {
    size_t executed =
        sharded_ != nullptr ? sharded_->RunFor(duration) : loop_.RunFor(duration);
    events_executed_ += executed;
    return executed;
  }
  void Settle(net::SimTime duration = 5 * net::kSecond) { RunSim(duration); }

  net::SimTime sim_now() const { return sharded_ != nullptr ? sharded_->now() : loop_.now(); }
  uint64_t events_executed() const { return events_executed_; }
  net::ShardedEventLoop* sharded() { return sharded_.get(); }
  net::Network& net() { return *net_; }
  const ScaleRingOptions& options() const { return options_; }

  // Digest over every router's checkpointed state, in node-id order.
  uint32_t StateDigest() const {
    std::vector<const bgp::Router*> all;
    all.reserve(routers_.size());
    for (const auto& r : routers_) {
      all.push_back(r.get());
    }
    return RouterStateDigest(all);
  }

 private:
  size_t Prev(size_t i) const { return (i + ring_ - 1) % ring_; }
  size_t Next(size_t i) const { return (i + 1) % ring_; }

  void AddNeighbor(bgp::RouterConfig* config, net::NodeId peer, bgp::AsNumber remote_as) const {
    bgp::NeighborConfig neighbor;
    neighbor.address = Address(peer);
    neighbor.remote_as = remote_as;  // no filters: default accept both ways
    config->neighbors.push_back(neighbor);
  }

  ScaleRingOptions options_;
  size_t ring_;
  size_t fanout_;
  net::EventLoop loop_;  // drives the simulation when sim_shards == 0
  std::unique_ptr<net::ShardedEventLoop> sharded_;
  std::unique_ptr<net::Network> net_;
  uint64_t events_executed_ = 0;
  std::vector<std::unique_ptr<bgp::Router>> routers_;
};

}  // namespace dice::bench

#endif  // BENCH_TOPOLOGY_H_
