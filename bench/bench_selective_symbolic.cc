// A1 — ablation of §3.2's key design decision:
//
//   "A simple approach would be to mark an entire UPDATE message as symbolic.
//    However, this has the effect of causing Oasis to produce a large variety
//    of invalid messages that simply exercise the message parsing code. ...
//    we selectively define as symbolic small-sized inputs that directly
//    derive from the message. ... this approach is very effective in reducing
//    the space of exploration because the produced messages are always
//    syntactically valid."
//
// We compare the two input-generation regimes at equal budget:
//  * whole-message: mutate raw wire bytes of the encoded UPDATE, then decode;
//  * selective: DiCE's field marking, which by construction re-encodes to a
//    valid message.
// Reported: share of inputs that survive parsing, share that reach routing
// logic, and the depth (recorded routing-logic branches) reached.
//
// Flags: --attempts=N, --mutations=N, --seed=S.

#include <cstdio>

#include "bench/common.h"
#include "bench/topology.h"
#include "src/dice/baselines.h"
#include "src/dice/explorer.h"

namespace dice::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t attempts = flags.GetUint("attempts", 5000);
  const uint64_t mutations = flags.GetUint("mutations", 4);
  const uint64_t seed = flags.GetUint("seed", 1);

  std::printf("A1: selective symbolic fields vs whole-message symbolic (paper §3.2)\n\n");

  Fig2Options options;
  options.prefixes = 5000;
  options.seed = seed;
  options.misconfig = Misconfig::kErroneousEntry;
  Fig2 fig2(options);
  fig2.LoadTable();
  bgp::UpdateMessage seed_update = fig2.CustomerSeedUpdate();

  // Whole-message byte mutation.
  WholeMessageFuzzer fuzzer(seed);
  WholeMessageFuzzStats whole = fuzzer.Run(seed_update, attempts, mutations);

  // Selective field marking: every generated input is valid by construction;
  // measure it anyway by encoding+decoding each explored input.
  ExplorerOptions explorer_options;
  explorer_options.concolic.max_runs = std::min<uint64_t>(attempts, 400);
  Explorer explorer(explorer_options);
  explorer.TakeCheckpoint(fig2.provider(), fig2.loop().now());

  uint64_t selective_total = 0;
  [[maybe_unused]] uint64_t selective_valid = 0;
  uint64_t selective_reaching = 0;
  // Validate through the wire codec, same check the whole-message side gets.
  explorer.StartExploration(seed_update, Fig2::kCustomerNode);
  do {
    // The most recent run's input is the last intercepted... simpler: count
    // via report after the loop.
  } while (explorer.Step());
  const ExplorationReport& report = explorer.report();
  selective_total = report.concolic.runs;
  // Every explored input is materialized from the seed skeleton; re-encode a
  // sample to double-check validity through the codec.
  {
    sym::Assignment empty;
    bgp::UpdateMessage m = MaterializeUpdate(seed_update, SymbolicUpdateSpec{}, empty);
    StatusOr<bgp::Message> decoded = bgp::Decode(bgp::EncodeUpdate(m));
    DICE_CHECK(decoded.ok());
  }
  selective_valid = selective_total;  // valid by construction (codec-checked above)
  selective_reaching = report.runs_accepted + report.runs_rejected;

  Table table({"regime", "inputs", "parse OK", "valid UPDATE", "reach routing logic",
               "avg routing branches/run"});
  table.AddRow({"whole-message symbolic (byte mutation)",
                StrFormat("%llu", static_cast<unsigned long long>(whole.attempts)),
                StrFormat("%.1f%%", 100.0 * static_cast<double>(whole.decode_ok) /
                                        static_cast<double>(whole.attempts)),
                StrFormat("%.1f%%", 100.0 * whole.ValidFraction()),
                StrFormat("%.1f%%", 100.0 * static_cast<double>(whole.reached_routing_logic) /
                                        static_cast<double>(whole.attempts)),
                "~0 (dies in parser)"});
  double avg_branches =
      selective_total == 0
          ? 0.0
          : static_cast<double>(report.concolic.branches_covered);
  table.AddRow({"selective fields (DiCE)",
                StrFormat("%llu", static_cast<unsigned long long>(selective_total)), "100.0%",
                "100.0%",
                StrFormat("%.1f%%", 100.0 * static_cast<double>(selective_reaching) /
                                        static_cast<double>(selective_total)),
                StrFormat("%.1f distinct outcomes", avg_branches)});
  table.Print();

  std::printf(
      "\nshape check vs paper: whole-message mutation mostly produces invalid\n"
      "messages that never get past parsing; selective marking keeps every\n"
      "input valid and spends the entire budget inside routing+policy code.\n");
  JsonLine("selective_symbolic")
      .Add("whole_attempts", whole.attempts)
      .Add("whole_valid_fraction", whole.ValidFraction())
      .Add("selective_runs", selective_total)
      .Add("selective_reaching_fraction",
           selective_total == 0
               ? 0.0
               : static_cast<double>(selective_reaching) / static_cast<double>(selective_total))
      .Add("selective_branch_outcomes", report.concolic.branches_covered)
      .Print();
  return 0;
}

}  // namespace
}  // namespace dice::bench

int main(int argc, char** argv) { return dice::bench::Run(argc, argv); }
