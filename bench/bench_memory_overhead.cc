// E1 — §4.1 "Memory overhead" (bench regenerating the paper's numbers):
//
//   "The checkpoint process has 3.45% unique memory pages. The processes
//    forked for exploring from the checkpoint process consume on average
//    36.93% pages more (maximum of 39%)."
//
// Method, mirrored here: load the full table into the DiCE-enabled provider,
// take a checkpoint, keep replaying a 15-minute update trace on the live
// router (so live and checkpoint diverge, via COW, exactly as parent/child
// diverge after fork), then run exploration and measure what each clone
// dirties relative to the checkpoint.
//
// Flags: --prefixes=N (default 50000; paper scale 319355), --runs=N,
//        --minutes=M (trace length), --seed=S.

#include <cstdio>

#include "bench/common.h"
#include "bench/topology.h"
#include "src/checkpoint/checkpoint.h"
#include "src/dice/explorer.h"

namespace dice::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  Fig2Options options;
  options.prefixes = flags.GetUint("prefixes", 50000);
  options.seed = flags.GetUint("seed", 1);
  options.misconfig = Misconfig::kErroneousEntry;
  const uint64_t minutes = flags.GetUint("minutes", 15);
  const uint64_t runs = flags.GetUint("runs", 200);

  std::printf("E1: memory overhead of checkpointing and exploration (paper §4.1)\n");
  std::printf("table=%zu prefixes, trace=%llu min, exploration=%llu runs\n\n",
              options.prefixes, static_cast<unsigned long long>(minutes),
              static_cast<unsigned long long>(runs));

  Stopwatch build_timer;
  Fig2 fig2(options);
  fig2.LoadTable();
  std::printf("table loaded: %zu prefixes in provider RIB (%.1fs build+load)\n",
              fig2.provider().rib().PrefixCount(), build_timer.Seconds());

  // Take the checkpoint (the paper's fork()).
  checkpoint::CheckpointManager manager;
  Stopwatch checkpoint_timer;
  manager.Take(fig2.provider().CheckpointState(), fig2.provider().PeerViews(),
               fig2.loop().now());
  double checkpoint_seconds = checkpoint_timer.Seconds();

  // The live router keeps processing the update trace; COW divergence grows.
  trace::TraceGeneratorOptions gen_options;
  trace::Trace updates;
  {
    auto& generator = fig2.generator();
    trace::Trace t = generator.UpdateTrace();
    // Clip/extend to the requested duration.
    for (auto& ev : t.events) {
      if (ev.at <= minutes * 60 * net::kSecond) {
        updates.events.push_back(ev);
      }
    }
  }
  trace::ScheduleTrace(&fig2.loop(), &fig2.feed(), updates, fig2.loop().now());
  fig2.loop().RunUntil(fig2.loop().now() + (minutes * 60 + 5) * net::kSecond);

  checkpoint::MemoryStats checkpoint_stats =
      manager.CheckpointSharing(fig2.provider().CheckpointState());

  // Exploration over the checkpoint, measuring every clone.
  ExplorerOptions explorer_options;
  explorer_options.concolic.max_runs = runs;
  explorer_options.measure_memory = true;
  Explorer explorer(explorer_options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(manager.current().state, manager.current().peers,
                          fig2.loop().now());
  Stopwatch explore_timer;
  explorer.ExploreSeed(fig2.CustomerSeedUpdate(), Fig2::kCustomerNode);
  double explore_seconds = explore_timer.Seconds();

  const ExplorationReport& report = explorer.report();
  const CloneMemoryStats& mem = report.memory;

  std::printf("\n");
  Table table({"metric", "this repro", "paper (§4.1)"});
  table.AddRow({"checkpoint cost (s)", StrFormat("%.6f", checkpoint_seconds),
                "O(1) fork()"});
  table.AddRow({"checkpoint state pages",
                StrFormat("%zu", checkpoint_stats.total_pages), "-"});
  table.AddRow({"checkpoint unique pages (vs live)",
                StrFormat("%zu (%.2f%%)", checkpoint_stats.unique_pages,
                          checkpoint_stats.UniquePageFraction() * 100.0),
                "3.45%"});
  double avg_extra_pages = mem.runs_measured == 0
                               ? 0.0
                               : static_cast<double>(mem.unique_pages_sum) /
                                     static_cast<double>(mem.runs_measured);
  double avg_constraint_pages =
      mem.runs_measured == 0
          ? 0.0
          : static_cast<double>(mem.constraint_bytes_sum) /
                static_cast<double>(mem.runs_measured) / checkpoint::kPageSize;
  table.AddRow({"exploration clones measured", StrFormat("%llu",
                static_cast<unsigned long long>(mem.runs_measured)), "-"});
  table.AddRow({"clone avg unique pages (vs checkpoint)",
                StrFormat("%.1f (%.3f%%)", avg_extra_pages,
                          mem.AvgUniquePageFraction() * 100.0),
                "+36.93% (incl. engine state)"});
  table.AddRow({"clone max unique pages",
                StrFormat("%llu (%.3f%%)",
                          static_cast<unsigned long long>(mem.unique_pages_max),
                          mem.unique_page_fraction_max * 100.0),
                "+39%"});
  table.AddRow({"clone avg constraint memory (pages)",
                StrFormat("%.1f", avg_constraint_pages), "(part of the +36.93%)"});
  table.Print();

  // --- Clone-cost section: eager state copies vs lazy handles ---------------
  // The per-run cost an exploration pays before it even processes its input:
  // an eager clone copies the RouterState (Adj-RIB-Out map included); a lazy
  // handle copies nothing until the run writes — a reject run never does.
  const uint64_t clone_reps = flags.GetUint("clone_reps", 20000);
  checkpoint::CheckpointManager clone_mgr;
  clone_mgr.Take(fig2.provider().CheckpointState(), fig2.provider().PeerViews(),
                 fig2.loop().now());
  volatile size_t sink = 0;
  Stopwatch eager_timer;
  for (uint64_t i = 0; i < clone_reps; ++i) {
    bgp::RouterState clone = clone_mgr.Clone();
    sink = sink + clone.rib.PrefixCount();
  }
  double eager_seconds = eager_timer.Seconds();
  uint64_t eager_bytes = clone_mgr.bytes_cloned();
  Stopwatch lazy_timer;
  for (uint64_t i = 0; i < clone_reps; ++i) {
    checkpoint::CloneHandle handle = clone_mgr.CloneLazy();
    sink = sink + handle.read().rib.PrefixCount();  // a reject run: reads only
  }
  double lazy_seconds = lazy_timer.Seconds();
  uint64_t lazy_bytes = clone_mgr.bytes_cloned() - eager_bytes;

  std::printf("\nclone cost (%llu reps): eager %.0f ns/clone (%.0f bytes copied), "
              "lazy reject-run %.0f ns (0 bytes), avoided=%llu\n",
              static_cast<unsigned long long>(clone_reps),
              eager_seconds / static_cast<double>(clone_reps) * 1e9,
              static_cast<double>(eager_bytes) / static_cast<double>(clone_reps),
              lazy_seconds / static_cast<double>(clone_reps) * 1e9,
              static_cast<unsigned long long>(clone_mgr.clones_avoided()));

  std::printf(
      "\nnote: the paper's clone overhead includes the Oasis engine's full\n"
      "instrumentation state inside each forked child; our value-level\n"
      "instrumentation keeps constraints outside the clone, so routing-state\n"
      "overhead (COW node copies) and engine constraint memory are reported\n"
      "separately. The shape to check: checkpoint unique pages are a few\n"
      "percent, per-clone cost is small and bounded, nothing approaches a\n"
      "full copy. Exploration: %s in %.2fs\n",
      report.Summary().c_str(), explore_seconds);
  JsonLine("memory_overhead")
      .Add("prefixes", static_cast<uint64_t>(options.prefixes))
      .Add("checkpoint_seconds", checkpoint_seconds)
      .Add("checkpoint_total_pages", static_cast<uint64_t>(checkpoint_stats.total_pages))
      .Add("checkpoint_unique_page_fraction", checkpoint_stats.UniquePageFraction())
      .Add("clones_measured", mem.runs_measured)
      .Add("clone_avg_unique_pages", avg_extra_pages)
      .Add("clone_avg_unique_page_fraction", mem.AvgUniquePageFraction())
      .Add("explore_seconds", explore_seconds)
      .Add("checkpoint_attr_bytes_total", static_cast<uint64_t>(checkpoint_stats.attr_bytes_total))
      .Add("checkpoint_attr_bytes_unique",
           static_cast<uint64_t>(checkpoint_stats.attr_bytes_unique))
      .Add("eager_clone_ns", eager_seconds / static_cast<double>(clone_reps) * 1e9)
      .Add("lazy_clone_ns", lazy_seconds / static_cast<double>(clone_reps) * 1e9)
      .Add("eager_clone_bytes",
           static_cast<double>(eager_bytes) / static_cast<double>(clone_reps))
      .Add("lazy_clone_bytes", static_cast<double>(lazy_bytes) / static_cast<double>(clone_reps))
      .Print();
  return 0;
}

}  // namespace
}  // namespace dice::bench

int main(int argc, char** argv) { return dice::bench::Run(argc, argv); }
