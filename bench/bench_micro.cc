// A3 — substrate micro-benchmarks (google-benchmark):
//
//  * wire codec encode/decode throughput;
//  * COW Patricia trie: insert, exact/LPM lookup, snapshot, post-snapshot write;
//  * decision process (RoutePreferred);
//  * filter interpretation, concrete vs symbolic context — quantifying §3.2's
//    claim that the running system pays "virtually no overhead" when not
//    exploring (the concrete path allocates no expressions);
//  * solver queries of the shapes exploration produces;
//  * checkpoint clone cost at table scale.

#include <benchmark/benchmark.h>

#include "src/bgp/config.h"
#include "src/bgp/policy_eval.h"
#include "src/bgp/rib.h"
#include "src/bgp/wire.h"
#include "src/checkpoint/checkpoint.h"
#include "src/dice/symbolic_ctx.h"
#include "src/sym/solver.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"

namespace dice {
namespace {

bgp::UpdateMessage SampleUpdate() {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence({65000, 3549, 36561});
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
  u.attrs.med = 50;
  u.attrs.communities = {bgp::MakeCommunity(65000, 1)};
  u.nlri.push_back(*bgp::Prefix::Parse("208.65.152.0/22"));
  return u;
}

void BM_WireEncodeUpdate(benchmark::State& state) {
  bgp::UpdateMessage u = SampleUpdate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::EncodeUpdate(u));
  }
}
BENCHMARK(BM_WireEncodeUpdate);

void BM_WireDecodeUpdate(benchmark::State& state) {
  Bytes encoded = bgp::EncodeUpdate(SampleUpdate());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::Decode(encoded));
  }
}
BENCHMARK(BM_WireDecodeUpdate);

void BM_TrieInsert(benchmark::State& state) {
  Rng rng(1);
  std::vector<bgp::Prefix> prefixes;
  for (int i = 0; i < 10000; ++i) {
    prefixes.push_back(bgp::Prefix::Make(bgp::Ipv4Address(rng.NextU32()), 24));
  }
  for (auto _ : state) {
    bgp::PrefixTrie<int> trie;
    for (const auto& p : prefixes) {
      trie.Insert(p, 1);
    }
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TrieInsert);

bgp::PrefixTrie<int> MakeTrie(size_t n) {
  Rng rng(2);
  bgp::PrefixTrie<int> trie;
  while (trie.size() < n) {
    trie.Insert(bgp::Prefix::Make(bgp::Ipv4Address(rng.NextU32()), 24), 1);
  }
  return trie;
}

void BM_TrieLongestMatch(benchmark::State& state) {
  bgp::PrefixTrie<int> trie = MakeTrie(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.LongestMatch(bgp::Ipv4Address(rng.NextU32())));
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(10000)->Arg(100000);

void BM_TrieSnapshot(benchmark::State& state) {
  bgp::PrefixTrie<int> trie = MakeTrie(100000);
  for (auto _ : state) {
    bgp::PrefixTrie<int> snap = trie;
    benchmark::DoNotOptimize(snap.size());
  }
}
BENCHMARK(BM_TrieSnapshot);

void BM_TrieWriteAfterSnapshot(benchmark::State& state) {
  bgp::PrefixTrie<int> trie = MakeTrie(100000);
  Rng rng(4);
  for (auto _ : state) {
    bgp::PrefixTrie<int> snap = trie;  // forces path copies on the next write
    snap.Insert(bgp::Prefix::Make(bgp::Ipv4Address(rng.NextU32()), 24), 2);
    benchmark::DoNotOptimize(snap.size());
  }
}
BENCHMARK(BM_TrieWriteAfterSnapshot);

void BM_RoutePreferred(benchmark::State& state) {
  bgp::Route a;
  a.peer = 1;
  a.peer_as = 100;
  bgp::PathAttributes a_attrs;
  a_attrs.as_path = bgp::AsPath::Sequence({100, 200});
  a_attrs.local_pref = 150;
  a.attrs = std::move(a_attrs);
  bgp::Route b;
  b.peer = 2;
  b.peer_as = 100;
  bgp::PathAttributes b_attrs;
  b_attrs.as_path = bgp::AsPath::Sequence({100, 300});
  b_attrs.local_pref = 150;
  b_attrs.med = 10;
  b.attrs = std::move(b_attrs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::RoutePreferred(a, b));
  }
}
BENCHMARK(BM_RoutePreferred);

const bgp::RouterConfig& FilterConfig() {
  static const bgp::RouterConfig* config = [] {
    auto parsed = bgp::ParseSingleRouterConfig(R"(
router r {
  as 3; id 10.0.0.3;
  prefix-list customers { 10.1.0.0/16 le 24; 172.16.0.0/12 le 24; 192.168.0.0/16 le 24; }
  filter customer-in {
    term allow { match prefix in customers; then set local-pref 200; then accept; }
    term deny { then reject; }
  }
}
)");
    return new bgp::RouterConfig(std::move(parsed).value());
  }();
  return *config;
}

// The §3.2 "virtually no overhead" comparison: identical filter interpreted
// over the concrete context (live router) vs the symbolic context with marked
// fields (exploration clone).
void BM_FilterEvalConcrete(benchmark::State& state) {
  const bgp::RouterConfig& config = FilterConfig();
  const bgp::Filter* filter = config.policies.FindFilter("customer-in");
  bgp::PathAttributes attrs = SampleUpdate().attrs;
  bgp::Prefix prefix = *bgp::Prefix::Parse("10.1.7.0/24");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::EvaluateFilterConcrete(*filter, config.policies, prefix, attrs));
  }
}
BENCHMARK(BM_FilterEvalConcrete);

void BM_FilterEvalSymbolic(benchmark::State& state) {
  const bgp::RouterConfig& config = FilterConfig();
  const bgp::Filter* filter = config.policies.FindFilter("customer-in");
  for (auto _ : state) {
    sym::Engine engine;
    engine.BeginRun({});
    SymbolicCtx ctx(&engine);
    bgp::RouteView<sym::Value> view;
    view.prefix_addr = engine.MakeSymbolic("addr", 32, 0x0a010700, 0, 0xffffffff);
    view.prefix_len = engine.MakeSymbolic("len", 8, 24, 0, 32);
    view.as_path = {sym::Value(65000), sym::Value(36561)};
    view.origin_code = sym::Value(0);
    view.next_hop = sym::Value(0x0a000001);
    view.med = sym::Value(0);
    view.local_pref = sym::Value(100);
    benchmark::DoNotOptimize(bgp::EvaluateFilter(ctx, *filter, config.policies, view));
  }
}
BENCHMARK(BM_FilterEvalSymbolic);

void BM_SolverRangeQuery(benchmark::State& state) {
  sym::SolverOptions options;
  std::vector<sym::VarInfo> vars(2);
  vars[0] = {0, "addr", 32, 0x0a010700, 0, 0xffffffff};
  vars[1] = {1, "len", 8, 24, 0, 32};
  auto addr = sym::Expr::MakeVar(0, 32);
  auto len = sym::Expr::MakeVar(1, 8);
  std::vector<sym::ExprPtr> constraints{
      sym::Expr::UGe(addr, sym::Expr::MakeConst(0xd0419800, 32)),
      sym::Expr::ULe(addr, sym::Expr::MakeConst(0xd0419bff, 32)),
      sym::Expr::UGe(len, sym::Expr::MakeConst(22, 8)),
      sym::Expr::ULe(len, sym::Expr::MakeConst(24, 8)),
  };
  for (auto _ : state) {
    sym::Solver solver(options);
    benchmark::DoNotOptimize(solver.Solve(constraints, vars, {}));
  }
}
BENCHMARK(BM_SolverRangeQuery);

void BM_CheckpointClone(benchmark::State& state) {
  trace::TraceGeneratorOptions gen_options;
  gen_options.prefix_count = static_cast<size_t>(state.range(0));
  trace::TraceGenerator generator(gen_options);
  bgp::RouterState live;
  live.config = std::make_shared<const bgp::RouterConfig>();
  bgp::UpdateSink sink = [](bgp::PeerId, const bgp::UpdateMessage&) {};
  for (const auto& entry : generator.table()) {
    bgp::Route route;
    route.peer = 1;
    route.peer_as = 65000;
    route.attrs = entry.attrs;
    live.rib.AddRoute(entry.prefix, std::move(route));
  }
  checkpoint::CheckpointManager manager;
  manager.Take(live, {}, 0);
  for (auto _ : state) {
    bgp::RouterState clone = manager.Clone();
    benchmark::DoNotOptimize(clone.rib.PrefixCount());
  }
}
BENCHMARK(BM_CheckpointClone)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace dice

BENCHMARK_MAIN();
