// Tests for the .dtrc binary trace format (src/trace/dtrc.h): exact
// round-trips against the text format, attr-set interning, and the same
// adversarial discipline as persist_snapshot_test — truncation at every
// length, every single-bit flip, version skew, magic confusion, trailing
// garbage, and bad attribute references must all surface as a Status, never
// a crash or a silently wrong Trace.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/trace/dtrc.h"
#include "src/trace/trace.h"
#include "src/util/frame.h"

namespace dice::trace {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

TraceGeneratorOptions SmallOptions(uint64_t seed = 1) {
  TraceGeneratorOptions options;
  options.seed = seed;
  options.prefix_count = 400;
  options.as_count = 50;
  options.update_duration = 30 * net::kSecond;
  options.updates_per_second = 2.0;
  return options;
}

Trace CorpusTrace(uint64_t seed = 1) {
  TraceGenerator gen(SmallOptions(seed));
  Trace trace = gen.FullDump();
  Trace updates = gen.UpdateTrace();
  trace.events.insert(trace.events.end(), updates.events.begin(), updates.events.end());
  return trace;
}

TraceEvent RichEvent(net::SimTime at) {
  TraceEvent ev;
  ev.at = at;
  ev.update.attrs.as_path = bgp::AsPath({{bgp::AsSegmentType::kAsSequence, {65000, 9}},
                                         {bgp::AsSegmentType::kAsSet, {11, 12}}});
  ev.update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
  ev.update.attrs.origin = bgp::Origin::kIgp;
  ev.update.attrs.med = 50;
  ev.update.attrs.local_pref = 200;
  ev.update.attrs.atomic_aggregate = true;
  ev.update.attrs.aggregator = bgp::Aggregator{9, *bgp::Ipv4Address::Parse("192.0.2.1")};
  ev.update.attrs.communities = {(65000u << 16) | 666u};
  ev.update.attrs.unknown.push_back(bgp::UnknownAttribute{0xc0, 32, {1, 2, 3}});
  ev.update.withdrawn.push_back(P("192.0.2.0/24"));
  ev.update.nlri.push_back(P("198.51.100.0/24"));
  return ev;
}

TEST(DtrcTest, EmptyTraceRoundTrips) {
  auto bytes = SerializeTraceBinary(Trace{});
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto parsed = ParseTraceBinary(*bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->events.empty());
}

TEST(DtrcTest, RichEventRoundTripsExactly) {
  Trace trace;
  trace.events.push_back(RichEvent(7));
  trace.events.push_back(RichEvent(7));    // same time is legal (delta 0)
  trace.events.push_back(RichEvent(123));
  auto bytes = SerializeTraceBinary(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto parsed = ParseTraceBinary(*bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 3u);
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i], trace.events[i]) << "event " << i;
  }
}

TEST(DtrcTest, GeneratedCorpusRoundTripsExactly) {
  Trace trace = CorpusTrace();
  auto bytes = SerializeTraceBinary(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto parsed = ParseTraceBinary(*bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_EQ(parsed->events[i], trace.events[i]) << "event " << i;
  }
}

// Text -> binary -> text fidelity: both serializations describe the same
// events, so a corpus can move between formats without changing a verdict.
TEST(DtrcTest, TextAndBinaryAgreeOnGeneratedCorpus) {
  Trace trace = CorpusTrace(3);
  auto from_text = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  auto bytes = SerializeTraceBinary(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto from_binary = ParseTraceBinary(*bytes);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status();
  ASSERT_EQ(from_text->events.size(), from_binary->events.size());
  for (size_t i = 0; i < from_text->events.size(); ++i) {
    ASSERT_EQ(from_text->events[i], from_binary->events[i]) << "event " << i;
  }
}

TEST(DtrcTest, InterningStoresEachDistinctAttrSetOnce) {
  // 1000 events sharing one attribute set: the table must hold exactly one
  // entry, and the file must undercut the text rendering by a wide margin.
  TraceWriter writer;
  TraceEvent ev = RichEvent(0);
  Trace trace;
  for (int i = 0; i < 1000; ++i) {
    ev.at = i;
    ASSERT_TRUE(writer.Append(ev).ok());
    trace.events.push_back(ev);
  }
  EXPECT_EQ(writer.attr_count(), 1u);
  EXPECT_EQ(writer.event_count(), 1000u);
  Bytes bytes = writer.Finish();
  EXPECT_LT(bytes.size(), SerializeTrace(trace).size() / 3);
  auto parsed = ParseTraceBinary(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 1000u);
  EXPECT_EQ(parsed->events.back(), trace.events.back());
}

TEST(DtrcTest, WriterRejectsOutOfOrderEvents) {
  TraceWriter writer;
  ASSERT_TRUE(writer.Append(RichEvent(100)).ok());
  Status out_of_order = writer.Append(RichEvent(99));
  EXPECT_FALSE(out_of_order.ok());
  EXPECT_EQ(out_of_order.code(), StatusCode::kInvalidArgument);
}

TEST(DtrcTest, ReaderStreamsAndStopsAtEnd) {
  Trace trace = CorpusTrace(9);
  auto bytes = SerializeTraceBinary(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto reader = TraceReader::Open(*bytes);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->event_count(), trace.events.size());
  size_t i = 0;
  while (!reader->Done()) {
    auto event = reader->Next();
    ASSERT_TRUE(event.ok()) << event.status();
    ASSERT_EQ(*event, trace.events[i]) << "event " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.events.size());
  EXPECT_FALSE(reader->Next().ok()) << "Next past the end must be an error";
}

TEST(DtrcTest, AutoSniffPicksTheRightParser) {
  Trace trace = CorpusTrace(2);
  auto bytes = SerializeTraceBinary(trace);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_TRUE(LooksLikeBinaryTrace(*bytes));
  std::string binary_content(bytes->begin(), bytes->end());
  auto from_binary = ParseTraceAuto(binary_content);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status();
  EXPECT_EQ(from_binary->events.size(), trace.events.size());
  auto from_text = ParseTraceAuto(SerializeTrace(trace));
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  EXPECT_EQ(from_text->events.size(), trace.events.size());
}

// --- adversarial bytes ------------------------------------------------------

class DtrcCorruption : public ::testing::Test {
 protected:
  DtrcCorruption() {
    Trace trace;
    trace.events.push_back(RichEvent(1));
    trace.events.push_back(RichEvent(50));
    bytes_ = *SerializeTraceBinary(trace);
  }

  static bool Loads(const Bytes& bytes) { return ParseTraceBinary(bytes).ok(); }

  Bytes bytes_;
};

TEST_F(DtrcCorruption, EveryTruncationIsAnError) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    Bytes truncated(bytes_.begin(), bytes_.begin() + len);
    EXPECT_FALSE(Loads(truncated)) << "length " << len << " parsed";
  }
}

TEST_F(DtrcCorruption, EverySingleBitFlipIsAnError) {
  for (size_t byte = 0; byte < bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = bytes_;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(Loads(flipped)) << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
}

TEST_F(DtrcCorruption, VersionSkewMagicConfusionAndTrailingGarbage) {
  // A future version must be rejected, not misread.
  Bytes body(bytes_.begin() + kFrameHeaderSize, bytes_.end());
  EXPECT_FALSE(Loads(FrameMessage(kTraceFormatMagic, kTraceFormatVersion + 1, body)));
  // A different magic (here: a snapshot-looking one) must be rejected.
  EXPECT_FALSE(Loads(FrameMessage(kTraceFormatMagic + 1, kTraceFormatVersion, body)));
  // Bytes appended after the frame land inside the checksummed body.
  Bytes trailing = bytes_;
  trailing.push_back(0);
  EXPECT_FALSE(Loads(trailing));
}

TEST_F(DtrcCorruption, OutOfRangeAttrReferenceIsAnError) {
  // Hand-build a frame whose one event references attribute index 1 while
  // the table holds a single entry — a reference the frame checksum cannot
  // catch, only the reader's range check.
  bgp::AttrTable table;
  bgp::PathAttributes attrs = RichEvent(0).update.attrs;
  ASSERT_EQ(table.IndexOf(bgp::InternedAttrs(attrs)), 0u);
  ByteWriter body;
  table.Serialize(body);
  body.PutU64(1);     // one event
  body.PutVarU64(1);  // attr index out of range
  body.PutVarU64(0);  // delta time
  body.PutVarU64(0);  // withdrawn count
  body.PutVarU64(0);  // nlri count
  auto parsed = ParseTraceBinary(FrameMessage(kTraceFormatMagic, kTraceFormatVersion,
                                              body.bytes()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DtrcCorruption, TrailingBytesInsideTheBodyAreAnError) {
  // Valid events followed by garbage inside the (correctly checksummed)
  // frame body: the reader must notice the leftovers after the last event.
  Bytes body(bytes_.begin() + kFrameHeaderSize, bytes_.end());
  body.push_back(0xee);
  EXPECT_FALSE(Loads(FrameMessage(kTraceFormatMagic, kTraceFormatVersion, body)));
}

TEST_F(DtrcCorruption, EventCountBeyondBufferIsAnError) {
  bgp::AttrTable table;
  bgp::PathAttributes attrs;
  (void)table.IndexOf(bgp::InternedAttrs(attrs));
  ByteWriter body;
  table.Serialize(body);
  body.PutU64(1u << 30);  // claims a billion events in a tiny buffer
  auto parsed = ParseTraceBinary(FrameMessage(kTraceFormatMagic, kTraceFormatVersion,
                                              body.bytes()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dice::trace
