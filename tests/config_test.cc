// Tests for the configuration language parser.

#include <gtest/gtest.h>

#include "src/bgp/config.h"

namespace dice::bgp {
namespace {

constexpr const char* kProviderConfig = R"(
# The provider router of Fig. 2.
router provider {
  as 3;
  id 10.0.0.3;
  network 10.3.0.0/16;

  prefix-list customer-routes {
    10.1.0.0/16 le 24;
    10.2.0.0/16;
  }

  filter customer-in {
    term allow {
      match prefix in customer-routes;
      then set local-pref 200;
      then accept;
    }
    term deny-rest {
      then reject;
    }
  }

  filter announce-all {
    default accept;
  }

  neighbor 10.0.0.1 {
    as 1;
    import filter customer-in;
    export filter announce-all;
  }
  neighbor 10.0.0.9 {
    as 9;
    import accept;
    export accept;
  }
}
)";

TEST(ConfigTest, ParsesFullRouterBlock) {
  auto parsed = ParseSingleRouterConfig(kProviderConfig);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const RouterConfig& r = *parsed;
  EXPECT_EQ(r.name, "provider");
  EXPECT_EQ(r.local_as, 3u);
  EXPECT_EQ(r.router_id.ToString(), "10.0.0.3");
  ASSERT_EQ(r.networks.size(), 1u);
  EXPECT_EQ(r.networks[0].ToString(), "10.3.0.0/16");

  const PrefixList* list = r.policies.FindPrefixList("customer-routes");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 2u);
  EXPECT_EQ(list->entries[0].ge, 16);
  EXPECT_EQ(list->entries[0].le, 24);
  EXPECT_EQ(list->entries[1].le, 16);

  const Filter* filter = r.policies.FindFilter("customer-in");
  ASSERT_NE(filter, nullptr);
  ASSERT_EQ(filter->terms.size(), 2u);
  EXPECT_EQ(filter->terms[0].name, "allow");
  ASSERT_EQ(filter->terms[0].matches.size(), 1u);
  EXPECT_EQ(filter->terms[0].matches[0].kind, MatchKind::kPrefixInList);
  ASSERT_EQ(filter->terms[0].actions.size(), 2u);
  EXPECT_EQ(filter->terms[0].actions[0].kind, ActionKind::kSetLocalPref);
  EXPECT_EQ(filter->terms[0].actions[0].number, 200u);

  ASSERT_EQ(r.neighbors.size(), 2u);
  EXPECT_EQ(r.neighbors[0].address.ToString(), "10.0.0.1");
  EXPECT_EQ(r.neighbors[0].remote_as, 1u);
  EXPECT_EQ(r.neighbors[0].import_filter, "customer-in");
  EXPECT_EQ(r.neighbors[0].export_filter, "announce-all");
  EXPECT_TRUE(r.neighbors[1].import_filter.empty());
  EXPECT_TRUE(r.neighbors[1].import_default_accept);
}

TEST(ConfigTest, ParsesMultipleRouters) {
  auto parsed = ParseConfig(R"(
router a { as 1; id 1.1.1.1; }
router b { as 2; id 2.2.2.2; }
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "a");
  EXPECT_EQ((*parsed)[1].name, "b");
}

TEST(ConfigTest, ParsesAllMatchKinds) {
  auto parsed = ParseSingleRouterConfig(R"(
router r {
  as 1; id 1.1.1.1;
  prefix-list pl { 10.0.0.0/8 ge 16 le 24; }
  filter f {
    term t0 { match any; then accept; }
    term t1 { match prefix in pl; }
    term t2 { match prefix is 10.0.0.0/8; }
    term t3 { match prefix within 10.0.0.0/8; }
    term t4 { match origin-as is 65001; }
    term t5 { match origin-as in [1, 2, 3]; }
    term t6 { match as-path contains 666; }
    term t7 { match as-path length <= 5; }
    term t8 { match community 65000:99; }
    term t9 { match med < 100; }
    term t10 { match local-pref >= 200; }
    term t11 { match origin igp; }
    term t12 { match next-hop is 192.0.2.1; }
  }
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Filter* f = parsed->policies.FindFilter("f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->terms.size(), 13u);
  EXPECT_EQ(f->terms[4].matches[0].kind, MatchKind::kOriginAsIs);
  EXPECT_EQ(f->terms[5].matches[0].numbers, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(f->terms[7].matches[0].cmp, CmpOp::kLe);
  EXPECT_EQ(f->terms[8].matches[0].community, MakeCommunity(65000, 99));
  EXPECT_EQ(f->terms[11].matches[0].number, 0u);  // igp
}

TEST(ConfigTest, ParsesAllActionKinds) {
  auto parsed = ParseSingleRouterConfig(R"(
router r {
  as 1; id 1.1.1.1;
  filter f {
    term t {
      then set local-pref 150;
      then set med 10;
      then set next-hop 192.0.2.7;
      then prepend 65000;
      then add community 65000:1;
      then remove community 65000:2;
      then accept;
    }
  }
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Filter* f = parsed->policies.FindFilter("f");
  ASSERT_EQ(f->terms[0].actions.size(), 7u);
  EXPECT_EQ(f->terms[0].actions[0].kind, ActionKind::kSetLocalPref);
  EXPECT_EQ(f->terms[0].actions[3].kind, ActionKind::kPrependAs);
  EXPECT_EQ(f->terms[0].actions[5].kind, ActionKind::kRemoveCommunity);
}

TEST(ConfigTest, CommentsAreIgnored) {
  auto parsed = ParseSingleRouterConfig(R"(
# leading comment
router r {  # trailing comment
  as 1; id 1.1.1.1;
}
)");
  EXPECT_TRUE(parsed.ok()) << parsed.status();
}

struct BadConfigCase {
  const char* name;
  const char* text;
  const char* expect_substring;
};

class ConfigErrorTest : public ::testing::TestWithParam<BadConfigCase> {};

TEST_P(ConfigErrorTest, Rejected) {
  auto parsed = ParseConfig(GetParam().text);
  ASSERT_FALSE(parsed.ok()) << "config '" << GetParam().name << "' should not parse";
  EXPECT_NE(parsed.status().message().find(GetParam().expect_substring), std::string::npos)
      << parsed.status();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConfigErrorTest,
    ::testing::Values(
        BadConfigCase{"missing_brace", "router r { as 1; id 1.1.1.1;", "expected"},
        BadConfigCase{"bad_as", "router r { as 0; id 1.1.1.1; }", "AS number"},
        BadConfigCase{"as_too_big", "router r { as 70000; id 1.1.1.1; }", "AS number"},
        BadConfigCase{"bad_ip", "router r { as 1; id 1.1.1.300; }", "IPv4 address"},
        BadConfigCase{"bad_prefix", "router r { as 1; id 1.1.1.1; network 10.0.0.0/40; }",
                      "prefix"},
        BadConfigCase{"neighbor_without_as",
                      "router r { as 1; id 1.1.1.1; neighbor 2.2.2.2 { import accept; } }",
                      "missing 'as'"},
        BadConfigCase{"unknown_filter_ref",
                      "router r { as 1; id 1.1.1.1; neighbor 2.2.2.2 { as 2; import filter no; } }",
                      "unknown import filter"},
        BadConfigCase{"dangling_prefix_list",
                      "router r { as 1; id 1.1.1.1; filter f { term t { match prefix in nope; } } }",
                      "unknown prefix-list"},
        BadConfigCase{"bad_ge", "router r { as 1; id 1.1.1.1; prefix-list p { 10.0.0.0/8 ge 40; } }",
                      "ge bound"},
        BadConfigCase{"ge_below_len",
                      "router r { as 1; id 1.1.1.1; prefix-list p { 10.0.0.0/16 ge 8; } }",
                      "bad ge/le"},
        BadConfigCase{"bad_community",
                      "router r { as 1; id 1.1.1.1; filter f { term t { match community 70000:1; } } }",
                      "16 bits"},
        BadConfigCase{"unknown_match",
                      "router r { as 1; id 1.1.1.1; filter f { term t { match sorcery; } } }",
                      "unknown match"},
        BadConfigCase{"unknown_action",
                      "router r { as 1; id 1.1.1.1; filter f { term t { then levitate; } } }",
                      "unknown action"},
        BadConfigCase{"bad_relationship",
                      "router r { as 1; id 1.1.1.1; neighbor 2.2.2.2 { as 2; relationship frenemy; } }",
                      "customer/peer/provider"},
        BadConfigCase{"garbage_toplevel", "flux capacitor", "expected 'router'"},
        BadConfigCase{"stray_char", "router r @ { as 1; }", "unexpected character"}),
    [](const ::testing::TestParamInfo<BadConfigCase>& param_info) { return std::string(param_info.param.name); });

TEST(ConfigTest, SingleRouterHelperRejectsMultiple) {
  auto parsed = ParseSingleRouterConfig("router a { as 1; id 1.1.1.1; } router b { as 2; id 2.2.2.2; }");
  EXPECT_FALSE(parsed.ok());
}

TEST(ConfigTest, ParsesNeighborRelationships) {
  auto parsed = ParseSingleRouterConfig(R"(
router r {
  as 3; id 10.0.0.3;
  neighbor 10.0.0.1 { as 1; relationship customer; }
  neighbor 10.0.0.5 { as 5; relationship peer; }
  neighbor 10.0.0.9 { as 9; relationship provider; }
  neighbor 10.0.0.7 { as 7; }
}
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->neighbors.size(), 4u);
  EXPECT_EQ(parsed->neighbors[0].relationship, PeerRelationship::kCustomer);
  EXPECT_EQ(parsed->neighbors[1].relationship, PeerRelationship::kPeer);
  EXPECT_EQ(parsed->neighbors[2].relationship, PeerRelationship::kProvider);
  // Unannotated sessions stay kUnknown, keeping the route-leak checker inert.
  EXPECT_EQ(parsed->neighbors[3].relationship, PeerRelationship::kUnknown);
}

TEST(ConfigTest, PeerRelationshipToString) {
  EXPECT_STREQ(ToString(PeerRelationship::kCustomer), "customer");
  EXPECT_STREQ(ToString(PeerRelationship::kPeer), "peer");
  EXPECT_STREQ(ToString(PeerRelationship::kProvider), "provider");
  EXPECT_STREQ(ToString(PeerRelationship::kUnknown), "unknown");
}

TEST(ConfigTest, FindNeighbor) {
  auto parsed = ParseSingleRouterConfig(
      "router r { as 1; id 1.1.1.1; neighbor 2.2.2.2 { as 2; } }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->FindNeighbor(*Ipv4Address::Parse("2.2.2.2")), nullptr);
  EXPECT_EQ(parsed->FindNeighbor(*Ipv4Address::Parse("3.3.3.3")), nullptr);
}

}  // namespace
}  // namespace dice::bgp
