// Tests for the policy store and the filter interpreter (concrete context).

#include <gtest/gtest.h>

#include "src/bgp/policy.h"
#include "src/bgp/policy_eval.h"
#include "src/bgp/rib.h"

namespace dice::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::Parse(s); }

Action SimpleAction(ActionKind kind) {
  Action a;
  a.kind = kind;
  return a;
}

PathAttributes Attrs(std::vector<AsNumber> path, Origin origin = Origin::kIgp) {
  PathAttributes a;
  a.as_path = AsPath::Sequence(std::move(path));
  a.origin = origin;
  a.next_hop = *Ipv4Address::Parse("10.0.0.1");
  return a;
}

PolicyStore StoreWithCustomerList() {
  PolicyStore store;
  PrefixList list;
  list.name = "customers";
  list.entries.push_back(PrefixListEntry{P("10.1.0.0/16"), 0, 24});  // le 24
  list.entries.push_back(PrefixListEntry{P("10.2.0.0/16"), 0, 0});   // exact
  EXPECT_TRUE(store.AddPrefixList(std::move(list)).ok());
  return store;
}

// --- PolicyStore ------------------------------------------------------------

TEST(PolicyStoreTest, GeLeDefaults) {
  PolicyStore store = StoreWithCustomerList();
  const PrefixList* list = store.FindPrefixList("customers");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries[0].ge, 16);  // defaults to prefix length
  EXPECT_EQ(list->entries[0].le, 24);
  EXPECT_EQ(list->entries[1].ge, 16);
  EXPECT_EQ(list->entries[1].le, 16);  // defaults to prefix length (exact)
}

TEST(PolicyStoreTest, RejectsBadBounds) {
  PolicyStore store;
  PrefixList list;
  list.name = "bad";
  list.entries.push_back(PrefixListEntry{P("10.0.0.0/16"), 8, 24});  // ge < length
  EXPECT_FALSE(store.AddPrefixList(std::move(list)).ok());

  PrefixList list2;
  list2.name = "bad2";
  list2.entries.push_back(PrefixListEntry{P("10.0.0.0/16"), 24, 20});  // ge > le
  EXPECT_FALSE(store.AddPrefixList(std::move(list2)).ok());
}

TEST(PolicyStoreTest, RejectsDuplicates) {
  PolicyStore store = StoreWithCustomerList();
  PrefixList dup;
  dup.name = "customers";
  EXPECT_EQ(store.AddPrefixList(std::move(dup)).code(), StatusCode::kAlreadyExists);
  Filter f;
  f.name = "f";
  EXPECT_TRUE(store.AddFilter(f).ok());
  EXPECT_EQ(store.AddFilter(std::move(f)).code(), StatusCode::kAlreadyExists);
}

TEST(PolicyStoreTest, ValidateCatchesDanglingListReference) {
  PolicyStore store;
  Filter f;
  f.name = "f";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kPrefixInList;
  m.list_name = "nonexistent";
  t.matches.push_back(m);
  f.terms.push_back(t);
  ASSERT_TRUE(store.AddFilter(std::move(f)).ok());
  EXPECT_EQ(store.Validate().code(), StatusCode::kNotFound);
}

// --- filter evaluation ---------------------------------------------------------

TEST(FilterEvalTest, CustomerImportFilterAcceptsListedPrefix) {
  PolicyStore store = StoreWithCustomerList();
  Filter filter = MakeCustomerImportFilter("customer-in", "customers");
  ASSERT_TRUE(store.AddFilter(filter).ok());

  FilterVerdict v = EvaluateFilterConcrete(filter, store, P("10.1.5.0/24"), Attrs({65001}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.local_pref, 200u);  // the set local-pref action applied

  // /25 exceeds le 24.
  v = EvaluateFilterConcrete(filter, store, P("10.1.5.0/25"), Attrs({65001}));
  EXPECT_FALSE(v.accepted);

  // Exact-only entry rejects a more specific.
  v = EvaluateFilterConcrete(filter, store, P("10.2.1.0/24"), Attrs({65001}));
  EXPECT_FALSE(v.accepted);
  v = EvaluateFilterConcrete(filter, store, P("10.2.0.0/16"), Attrs({65001}));
  EXPECT_TRUE(v.accepted);

  // Unlisted space rejected — the route-leak defense.
  v = EvaluateFilterConcrete(filter, store, P("208.65.153.0/24"), Attrs({65001}));
  EXPECT_FALSE(v.accepted);
}

TEST(FilterEvalTest, EmptyTermMatchesEverything) {
  PolicyStore store;
  Filter f;
  f.name = "reject-all";
  FilterTerm t;
  t.actions.push_back(SimpleAction(ActionKind::kReject));
  f.terms.push_back(t);
  f.default_accept = true;  // must be shadowed by the term
  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1}));
  EXPECT_FALSE(v.accepted);
}

TEST(FilterEvalTest, DefaultAppliesWhenNoTermTerminates) {
  PolicyStore store;
  Filter f;
  f.name = "empty";
  f.default_accept = true;
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1})).accepted);
  f.default_accept = false;
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1})).accepted);
}

TEST(FilterEvalTest, OriginAsMatching) {
  PolicyStore store;
  Filter f;
  f.name = "by-origin";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kOriginAsIs;
  m.number = 65001;
  t.matches.push_back(m);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);

  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({65000, 65001})).accepted);
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({65001, 65002})).accepted);
}

TEST(FilterEvalTest, OriginAsInSet) {
  PolicyStore store;
  Filter f;
  f.name = "by-origin-set";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kOriginAsIn;
  m.numbers = {10, 20, 30};
  t.matches.push_back(m);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 20})).accepted);
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 25})).accepted);
}

TEST(FilterEvalTest, AsPathContains) {
  PolicyStore store;
  Filter f;
  f.name = "no-transit-666";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kAsPathContains;
  m.number = 666;
  t.matches.push_back(m);
  t.actions.push_back(SimpleAction(ActionKind::kReject));
  f.terms.push_back(t);
  f.default_accept = true;
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 666, 2})).accepted);
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 2})).accepted);
}

TEST(FilterEvalTest, AsPathLengthComparisons) {
  PolicyStore store;
  Filter f;
  f.name = "short-paths-only";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kAsPathLength;
  m.cmp = CmpOp::kLe;
  m.number = 3;
  t.matches.push_back(m);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 2, 3})).accepted);
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 2, 3, 4})).accepted);
}

TEST(FilterEvalTest, CommunityMatchAndActions) {
  PolicyStore store;
  Filter f;
  f.name = "community-ops";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kHasCommunity;
  m.community = MakeCommunity(65000, 1);
  t.matches.push_back(m);
  {
    Action add;
    add.kind = ActionKind::kAddCommunity;
    add.community = MakeCommunity(65000, 2);
    t.actions.push_back(add);
  }
  Action remove;
  remove.kind = ActionKind::kRemoveCommunity;
  remove.community = MakeCommunity(65000, 1);
  t.actions.push_back(remove);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);

  PathAttributes attrs = Attrs({1});
  attrs.communities = {MakeCommunity(65000, 1)};
  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), attrs);
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.communities, (std::vector<Community>{MakeCommunity(65000, 2)}));

  attrs.communities = {};
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), attrs).accepted);
}

TEST(FilterEvalTest, MedAndLocalPrefComparisons) {
  PolicyStore store;
  Filter f;
  f.name = "med-gate";
  FilterTerm t;
  Match m;
  m.kind = MatchKind::kMedCmp;
  m.cmp = CmpOp::kLt;
  m.number = 100;
  t.matches.push_back(m);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);

  PathAttributes attrs = Attrs({1});
  attrs.med = 50;
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), attrs).accepted);
  attrs.med = 150;
  EXPECT_FALSE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), attrs).accepted);
  attrs.med.reset();  // absent MED compares as 0
  EXPECT_TRUE(EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), attrs).accepted);
}

TEST(FilterEvalTest, PrependAction) {
  PolicyStore store;
  Filter f;
  f.name = "prepender";
  FilterTerm t;
  Action prepend;
  prepend.kind = ActionKind::kPrependAs;
  prepend.number = 65000;
  t.actions.push_back(prepend);
  t.actions.push_back(prepend);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);

  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1, 2}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.as_path.ToString(), "65000 65000 1 2");
}

TEST(FilterEvalTest, SetMedAndNextHop) {
  PolicyStore store;
  Filter f;
  f.name = "setters";
  FilterTerm t;
  Action set_med;
  set_med.kind = ActionKind::kSetMed;
  set_med.number = 77;
  t.actions.push_back(set_med);
  Action set_nh;
  set_nh.kind = ActionKind::kSetNextHop;
  set_nh.address = *Ipv4Address::Parse("192.0.2.9");
  t.actions.push_back(set_nh);
  t.actions.push_back(SimpleAction(ActionKind::kAccept));
  f.terms.push_back(t);

  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.med, 77u);
  EXPECT_EQ(v.attrs.next_hop.ToString(), "192.0.2.9");
}

TEST(FilterEvalTest, FirstMatchingTermWins) {
  PolicyStore store = StoreWithCustomerList();
  Filter f;
  f.name = "ordered";
  {
    FilterTerm t;
    Match m;
    m.kind = MatchKind::kPrefixWithin;
    m.prefix = P("10.0.0.0/8");
    t.matches.push_back(m);
    Action a;
    a.kind = ActionKind::kSetLocalPref;
    a.number = 300;
    t.actions.push_back(a);
    t.actions.push_back(SimpleAction(ActionKind::kAccept));
    f.terms.push_back(t);
  }
  {
    FilterTerm t;
    Action a;
    a.kind = ActionKind::kSetLocalPref;
    a.number = 50;
    t.actions.push_back(a);
    t.actions.push_back(SimpleAction(ActionKind::kAccept));
    f.terms.push_back(t);
  }
  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.3.0.0/16"), Attrs({1}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.local_pref, 300u);

  v = EvaluateFilterConcrete(f, store, P("172.16.0.0/12"), Attrs({1}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.local_pref, 50u);
}

TEST(FilterEvalTest, NonTerminalTermFallsThroughWithModifications) {
  PolicyStore store;
  Filter f;
  f.name = "modifier-chain";
  {
    FilterTerm t;  // no terminal action: set and continue
    Action a;
    a.kind = ActionKind::kSetLocalPref;
    a.number = 500;
    t.actions.push_back(a);
    f.terms.push_back(t);
  }
  {
    FilterTerm t;
    t.actions.push_back(SimpleAction(ActionKind::kAccept));
    f.terms.push_back(t);
  }
  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1}));
  EXPECT_TRUE(v.accepted);
  EXPECT_EQ(v.attrs.local_pref, 500u);
}

// Rejected routes must not carry modifications out.
TEST(FilterEvalTest, RejectedVerdictKeepsOriginalAttrs) {
  PolicyStore store;
  Filter f;
  f.name = "modify-then-reject";
  FilterTerm t;
  Action a;
  a.kind = ActionKind::kSetLocalPref;
  a.number = 999;
  t.actions.push_back(a);
  t.actions.push_back(SimpleAction(ActionKind::kReject));
  f.terms.push_back(t);
  FilterVerdict v = EvaluateFilterConcrete(f, store, P("10.0.0.0/8"), Attrs({1}));
  EXPECT_FALSE(v.accepted);
  EXPECT_FALSE(v.attrs.local_pref.has_value());
}

}  // namespace
}  // namespace dice::bgp
