// Tests for src/util: strings, bytes, rng, status.

#include <gtest/gtest.h>

#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace dice {
namespace {

// --- strings -----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("router x", "router"));
  EXPECT_FALSE(StartsWith("rout", "router"));
  EXPECT_TRUE(EndsWith("a.cfg", ".cfg"));
  EXPECT_FALSE(EndsWith("cfg", ".cfg"));
}

TEST(StringsTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseInt64("+7"), 7);
  EXPECT_EQ(ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(ParseInt64("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(ParseInt64("9223372036854775808").has_value());  // overflow
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("-").has_value());
  EXPECT_FALSE(ParseInt64(" 1").has_value());
}

TEST(StringsTest, ParseUint64Strict) {
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("").has_value());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(StrFormat("%.2f", 0.125), "0.12");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --- bytes -------------------------------------------------------------------

TEST(BytesTest, WriterBigEndian) {
  ByteWriter w;
  w.PutU8(0x01);
  w.PutU16(0x0203);
  w.PutU32(0x04050607);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4, 5, 6, 7}));
}

TEST(BytesTest, WriterU64) {
  ByteWriter w;
  w.PutU64(0x0102030405060708ULL);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(BytesTest, ReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0xcdef);
  w.PutU32(0x12345678);
  w.PutU64(0xdeadbeefcafef00dULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0xcdef);
  EXPECT_EQ(r.ReadU32().value(), 0x12345678u);
  EXPECT_EQ(r.ReadU64().value(), 0xdeadbeefcafef00dULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReaderTruncationIsError) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_TRUE(r.ReadU32().status().code() == StatusCode::kOutOfRange);
  // Failed read consumes nothing.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.ReadU16().value(), 0x0102);
}

TEST(BytesTest, PatchU16) {
  ByteWriter w;
  w.PutU16(0);
  w.PutU8(9);
  w.PatchU16(0, 0xbeef);
  EXPECT_EQ(w.bytes(), (Bytes{0xbe, 0xef, 9}));
}

TEST(BytesTest, SkipAndReadBytes) {
  Bytes data{1, 2, 3, 4, 5};
  ByteReader r(data);
  ASSERT_TRUE(r.Skip(2).ok());
  EXPECT_EQ(r.ReadBytes(2).value(), (Bytes{3, 4}));
  EXPECT_FALSE(r.Skip(2).ok());
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(BytesTest, VarintRoundTripsAcrossMagnitudes) {
  const uint64_t values[] = {0,           1,          0x7f,
                             0x80,        0x3fff,     0x4000,
                             1234567890u, UINT32_MAX, UINT64_MAX};
  ByteWriter w;
  for (uint64_t v : values) {
    w.PutVarU64(v);
  }
  ByteReader r(w.bytes());
  for (uint64_t v : values) {
    EXPECT_EQ(r.ReadVarU64().value(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSizesMatchLeb128) {
  auto encoded_size = [](uint64_t v) {
    ByteWriter w;
    w.PutVarU64(v);
    return w.bytes().size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(0x7f), 1u);
  EXPECT_EQ(encoded_size(0x80), 2u);
  EXPECT_EQ(encoded_size(0x3fff), 2u);
  EXPECT_EQ(encoded_size(0x4000), 3u);
  EXPECT_EQ(encoded_size(UINT64_MAX), 10u);
}

TEST(BytesTest, VarintTruncationIsError) {
  ByteWriter w;
  w.PutVarU64(UINT64_MAX);
  for (size_t len = 0; len < w.bytes().size(); ++len) {
    Bytes truncated(w.bytes().begin(), w.bytes().begin() + len);
    ByteReader r(truncated);
    EXPECT_FALSE(r.ReadVarU64().ok()) << "length " << len << " decoded";
  }
}

TEST(BytesTest, VarintRejectsOverlongAndOverflowingEncodings) {
  // Eleven continuation bytes: no 64-bit value needs more than ten.
  Bytes overlong(11, 0x80);
  ByteReader r1(overlong);
  EXPECT_FALSE(r1.ReadVarU64().ok());

  // Ten bytes whose terminal byte sets more than the one bit a 64-bit value
  // has left: the encoding claims a 65-bit value.
  Bytes overflow(9, 0x80);
  overflow.push_back(0x02);
  ByteReader r2(overflow);
  EXPECT_FALSE(r2.ReadVarU64().ok());

  // The same shape with terminal byte 0x01 is the canonical UINT64_MAX tail.
  Bytes max(9, 0xff);
  max.push_back(0x01);
  ByteReader r3(max);
  EXPECT_EQ(r3.ReadVarU64().value(), UINT64_MAX);
}

TEST(BytesTest, HexDump) {
  EXPECT_EQ(HexDump({0x00, 0xff, 0x10}), "00 ff 10");
  EXPECT_EQ(HexDump({}), "");
}

// --- rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(13);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted(w), 1u);
  }
}

TEST(RngTest, ZipfIsHeavyTailed) {
  Rng rng(17);
  size_t rank0 = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    size_t r = rng.NextZipf(1000, 1.1);
    EXPECT_LT(r, 1000u);
    if (r == 0) {
      ++rank0;
    }
  }
  // Rank 0 should be far more popular than uniform (1/1000).
  EXPECT_GT(rank0, static_cast<size_t>(kSamples / 200));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- status ------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, StatusOrValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusTest, StatusOrError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseMacros(int x, int* out) {
  DICE_ASSIGN_OR_RETURN(int half, HalveEven(x));
  DICE_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(StatusTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseMacros(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dice
