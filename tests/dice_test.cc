// End-to-end tests of the DiCE core: symbolic update marking, the
// instrumented processing path (including parity with the concrete path),
// checkers, isolation, the explorer's route-leak detection (§4.2), and the
// baselines.

#include <gtest/gtest.h>

#include "src/dice/baselines.h"
#include "src/dice/explorer.h"
#include "src/util/rng.h"

namespace dice {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

bgp::UpdateMessage SeedUpdate(const char* prefix = "10.1.7.0/24",
                              std::vector<bgp::AsNumber> path = {1, 100}) {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(P(prefix));
  return u;
}

// The Fig. 2 provider: customer on peer 1 (AS 1), rest-of-Internet feed on
// peer 9 (AS 9). The customer import filter accepts `customer list` entries;
// when `extra_filter_entry` is non-null it simulates the fat-fingered entry
// that leaks foreign address space.
struct ProviderFixture {
  explicit ProviderFixture(const char* extra_filter_entry = nullptr,
                           bool customer_filtering = true) {
    auto config = std::make_shared<bgp::RouterConfig>();
    config->name = "provider";
    config->local_as = 3;
    config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");

    bgp::PrefixList customers;
    customers.name = "customers";
    customers.entries.push_back(bgp::PrefixListEntry{P("10.1.0.0/16"), 0, 24});
    if (extra_filter_entry != nullptr) {
      customers.entries.push_back(bgp::PrefixListEntry{P(extra_filter_entry), 0, 24});
    }
    EXPECT_TRUE(config->policies.AddPrefixList(std::move(customers)).ok());
    EXPECT_TRUE(config->policies
                    .AddFilter(bgp::MakeCustomerImportFilter("customer-in", "customers"))
                    .ok());

    bgp::NeighborConfig customer;
    customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer.remote_as = 1;
    if (customer_filtering) {
      customer.import_filter = "customer-in";
    }
    config->neighbors.push_back(customer);

    bgp::NeighborConfig internet;
    internet.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    internet.remote_as = 9;
    config->neighbors.push_back(internet);

    state.config = config;

    // Victim routes learned from the rest of the Internet (the YouTube /22
    // among them), plus the customer's legitimate route.
    AddRoute("208.65.152.0/22", /*peer=*/9, /*peer_as=*/9, {9, 36561});
    AddRoute("198.51.100.0/24", 9, 9, {9, 64501});
    AddRoute("192.0.2.0/24", 9, 9, {9, 64502});
    AddRoute("10.1.7.0/24", 1, 1, {1, 100});

    customer_view.id = 1;
    customer_view.remote_as = 1;
    customer_view.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer_view.established = true;
    internet_view.id = 9;
    internet_view.remote_as = 9;
    internet_view.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    internet_view.established = true;
  }

  void AddRoute(const char* prefix, bgp::PeerId peer, bgp::AsNumber peer_as,
                std::vector<bgp::AsNumber> path) {
    bgp::Route route;
    route.peer = peer;
    route.peer_as = peer_as;
    bgp::PathAttributes route_attrs;
    route_attrs.origin = bgp::Origin::kIgp;
    route_attrs.as_path = bgp::AsPath::Sequence(std::move(path));
    route_attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
    route.attrs = std::move(route_attrs);
    state.rib.AddRoute(P(prefix), std::move(route));
  }

  std::vector<bgp::PeerView> Peers() const { return {customer_view, internet_view}; }

  bgp::RouterState state;
  bgp::PeerView customer_view;
  bgp::PeerView internet_view;
};

// --- SymbolicUpdate ------------------------------------------------------------

TEST(SymbolicUpdateTest, BindsMarkedFieldsInStableOrder) {
  sym::Engine engine;
  engine.BeginRun({});
  bgp::UpdateMessage seed = SeedUpdate();
  SymbolicUpdate su = BuildSymbolicUpdate(engine, seed, SymbolicUpdateSpec{});
  // addr, len, 2 path elements, origin: med absent -> 5 vars.
  EXPECT_EQ(engine.vars().size(), 5u);
  EXPECT_EQ(engine.vars()[0].name, "nlri.addr");
  EXPECT_EQ(engine.vars()[1].name, "nlri.len");
  EXPECT_TRUE(su.view.prefix_addr.symbolic());
  EXPECT_TRUE(su.view.prefix_len.symbolic());
  EXPECT_EQ(su.concrete, seed) << "seed assignment must reproduce the seed message";
}

TEST(SymbolicUpdateTest, MedBoundOnlyWhenPresent) {
  sym::Engine engine;
  engine.BeginRun({});
  bgp::UpdateMessage seed = SeedUpdate();
  seed.attrs.med = 50;
  BuildSymbolicUpdate(engine, seed, SymbolicUpdateSpec{});
  EXPECT_EQ(engine.vars().size(), 6u);
  EXPECT_EQ(engine.vars().back().name, "med");
}

TEST(SymbolicUpdateTest, SpecDisablesFields) {
  sym::Engine engine;
  engine.BeginRun({});
  SymbolicUpdate su = BuildSymbolicUpdate(engine, SeedUpdate(), SymbolicUpdateSpec::NlriOnly());
  EXPECT_EQ(engine.vars().size(), 2u);
  EXPECT_FALSE(su.view.as_path[0].symbolic());
  EXPECT_FALSE(su.view.origin_code.symbolic());
}

TEST(SymbolicUpdateTest, MaterializeAppliesModel) {
  bgp::UpdateMessage seed = SeedUpdate();
  sym::Assignment model{{0, 0xd041980full /*208.65.152.15*/}, {1, 24}, {2, 7}, {3, 4242}, {4, 2}};
  bgp::UpdateMessage out = MaterializeUpdate(seed, SymbolicUpdateSpec{}, model);
  EXPECT_EQ(out.nlri[0], P("208.65.152.0/24")) << "host bits canonicalized";
  EXPECT_EQ(out.attrs.as_path.ToString(), "7 4242");
  EXPECT_EQ(out.attrs.origin, bgp::Origin::kIncomplete);
  // Withdrawn section untouched.
  EXPECT_EQ(out.withdrawn, seed.withdrawn);
}

TEST(SymbolicUpdateTest, VariableDomainsMatchFieldSemantics) {
  sym::Engine engine;
  engine.BeginRun({});
  BuildSymbolicUpdate(engine, SeedUpdate(), SymbolicUpdateSpec{});
  EXPECT_EQ(engine.vars()[1].hi, 32u);       // prefix length
  EXPECT_EQ(engine.vars()[2].lo, 1u);        // ASN excludes 0
  EXPECT_EQ(engine.vars()[2].hi, 0xffffu);
  EXPECT_EQ(engine.vars()[4].hi, 2u);        // origin code
}

// --- instrumented path: parity with the concrete router code --------------------

// Property: for random concrete inputs, the instrumented path (with symbolic
// marking!) must take exactly the decisions the concrete import path takes —
// concolic instrumentation never changes semantics.
class InstrumentedParityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InstrumentedParityProperty, MatchesConcreteImport) {
  Rng rng(GetParam());
  ProviderFixture fixture("208.65.152.0/22");

  for (int iter = 0; iter < 150; ++iter) {
    bgp::UpdateMessage input = SeedUpdate();
    input.nlri[0] = bgp::Prefix::Make(bgp::Ipv4Address(rng.NextU32()),
                                      static_cast<uint8_t>(rng.NextBelow(33)));
    std::vector<bgp::AsNumber> path{static_cast<bgp::AsNumber>(1 + rng.NextBelow(10)),
                                    static_cast<bgp::AsNumber>(1 + rng.NextBelow(65535))};
    input.attrs.as_path = bgp::AsPath::Sequence(path);

    // Concrete reference: ImportRoute on one clone.
    bgp::RouterState concrete_clone = fixture.state;
    const bgp::NeighborConfig* neighbor =
        concrete_clone.config->FindNeighbor(fixture.customer_view.address);
    ASSERT_NE(neighbor, nullptr);
    bgp::ImportOutcome reference = bgp::ImportRoute(concrete_clone, fixture.customer_view,
                                                    *neighbor, input.nlri[0], input.attrs);

    // Instrumented run on another clone, with everything marked symbolic and
    // the engine assignment equal to the input's own field values (so the
    // concrete execution processes exactly `input`).
    bgp::RouterState sym_clone = fixture.state;
    sym::Engine engine;
    engine.BeginRun({});
    bgp::UpdateSink sink = [](bgp::PeerId, const bgp::UpdateMessage&) {};
    ExplorationOutcome outcome = ExploreUpdateOnClone(
        engine, sym_clone, fixture.Peers(), fixture.customer_view, input, SymbolicUpdateSpec{},
        sink);

    bool reference_accepted = reference.disposition == bgp::ImportDisposition::kAccepted;
    EXPECT_EQ(outcome.installed, reference_accepted)
        << "input " << input.ToString() << ": instrumented="
        << outcome.installed << " concrete=" << reference_accepted;
    if (reference_accepted) {
      const bgp::Route* a = concrete_clone.rib.BestRoute(input.nlri[0]);
      const bgp::Route* b = sym_clone.rib.BestRoute(input.nlri[0]);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->attrs, b->attrs) << "imported attributes must match";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstrumentedParityProperty, ::testing::Values(1, 2, 3, 4));

TEST(InstrumentedTest, RecordsFilterConstraints) {
  ProviderFixture fixture;
  sym::Engine engine;
  engine.BeginRun({});
  bgp::UpdateSink sink = [](bgp::PeerId, const bgp::UpdateMessage&) {};
  bgp::RouterState clone = fixture.state;
  ExploreUpdateOnClone(engine, clone, fixture.Peers(), fixture.customer_view, SeedUpdate(),
                       SymbolicUpdateSpec{}, sink);
  EXPECT_GE(engine.path().size(), 3u)
      << "martian, loop, and filter branches must be recorded";
}

TEST(InstrumentedTest, EmitsInterceptedPropagation) {
  ProviderFixture fixture;
  sym::Engine engine;
  engine.BeginRun({});
  std::vector<bgp::UpdateMessage> emitted;
  bgp::UpdateSink sink = [&](bgp::PeerId to, const bgp::UpdateMessage& u) {
    EXPECT_EQ(to, 9u) << "split horizon: not back to the customer";
    emitted.push_back(u);
  };
  bgp::RouterState clone = fixture.state;
  // A new customer prefix inside the allowed range becomes best and is
  // propagated to the internet peer.
  ExplorationOutcome outcome =
      ExploreUpdateOnClone(engine, clone, fixture.Peers(), fixture.customer_view,
                           SeedUpdate("10.1.9.0/24"), SymbolicUpdateSpec{}, sink);
  EXPECT_TRUE(outcome.installed);
  EXPECT_TRUE(outcome.became_best);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].nlri[0], P("10.1.9.0/24"));
  EXPECT_EQ(outcome.messages_emitted, 1u);
}

TEST(InstrumentedTest, MartianAndLoopRejection) {
  ProviderFixture fixture;
  bgp::UpdateSink sink = [](bgp::PeerId, const bgp::UpdateMessage&) {};

  {
    sym::Engine engine;
    engine.BeginRun({});
    bgp::RouterState clone = fixture.state;
    ExplorationOutcome outcome =
        ExploreUpdateOnClone(engine, clone, fixture.Peers(), fixture.customer_view,
                             SeedUpdate("127.0.0.0/8"), SymbolicUpdateSpec{}, sink);
    EXPECT_TRUE(outcome.martian);
    EXPECT_FALSE(outcome.installed);
  }
  {
    sym::Engine engine;
    engine.BeginRun({});
    bgp::RouterState clone = fixture.state;
    ExplorationOutcome outcome = ExploreUpdateOnClone(
        engine, clone, fixture.Peers(), fixture.customer_view,
        SeedUpdate("10.1.7.0/24", {1, 3, 100}),  // contains provider AS 3
        SymbolicUpdateSpec{}, sink);
    EXPECT_TRUE(outcome.loop_rejected);
    EXPECT_FALSE(outcome.installed);
  }
}

// --- HijackChecker ---------------------------------------------------------------

TEST(HijackCheckerTest, FlagsExactOverrideAndMoreSpecific) {
  ProviderFixture fixture;
  HijackChecker checker;
  checker.OnCheckpoint(fixture.state);

  // Exact override: same prefix as the victim, different origin, became best.
  ExplorationOutcome outcome;
  outcome.prefix = P("208.65.152.0/22");
  outcome.installed = true;
  outcome.became_best = true;
  outcome.new_origin_as = 17557;  // Pakistan Telecom
  bgp::RouterState after = fixture.state;
  RunInfo info{0, &outcome, &after};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].old_origin, 36561u);
  EXPECT_EQ(detections[0].new_origin, 17557u);

  // More-specific hijack: new /24 inside the /22.
  detections.clear();
  outcome.prefix = P("208.65.153.0/24");
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].victim, P("208.65.152.0/22"));
}

TEST(HijackCheckerTest, SameOriginIsNotHijack) {
  ProviderFixture fixture;
  HijackChecker checker;
  checker.OnCheckpoint(fixture.state);
  ExplorationOutcome outcome;
  outcome.prefix = P("208.65.153.0/24");
  outcome.installed = true;
  outcome.became_best = true;
  outcome.new_origin_as = 36561;  // legitimate origin re-announcing
  bgp::RouterState after = fixture.state;
  RunInfo info{0, &outcome, &after};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  EXPECT_TRUE(detections.empty());
}

TEST(HijackCheckerTest, RejectedInputsNeverFlagged) {
  ProviderFixture fixture;
  HijackChecker checker;
  checker.OnCheckpoint(fixture.state);
  ExplorationOutcome outcome;
  outcome.prefix = P("208.65.152.0/22");
  outcome.installed = false;  // the filter did its job
  outcome.new_origin_as = 17557;
  bgp::RouterState after = fixture.state;
  RunInfo info{0, &outcome, &after};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  EXPECT_TRUE(detections.empty());
}

TEST(HijackCheckerTest, AnycastWhitelistSuppresses) {
  ProviderFixture fixture;
  HijackChecker checker;
  checker.AddAnycastPrefix(P("208.65.152.0/22"));
  checker.OnCheckpoint(fixture.state);
  ExplorationOutcome outcome;
  outcome.prefix = P("208.65.153.0/24");
  outcome.installed = true;
  outcome.became_best = true;
  outcome.new_origin_as = 17557;
  bgp::RouterState after = fixture.state;
  RunInfo info{0, &outcome, &after};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  EXPECT_TRUE(detections.empty());
  EXPECT_EQ(checker.suppressed_anycast(), 1u);
}

// --- RouteLeakChecker -------------------------------------------------------------

// The provider fixture with Gao-Rexford annotations: the customer session is
// marked customer, the rest-of-Internet feed becomes our provider, and a
// settlement-free peer (AS 5) joins so export-side valleys have a target.
struct AnnotatedFixture : ProviderFixture {
  AnnotatedFixture() {
    auto config = std::make_shared<bgp::RouterConfig>(*state.config);
    config->neighbors[0].relationship = bgp::PeerRelationship::kCustomer;
    config->neighbors[1].relationship = bgp::PeerRelationship::kProvider;
    bgp::NeighborConfig peer;
    peer.address = *bgp::Ipv4Address::Parse("10.0.0.5");
    peer.remote_as = 5;
    peer.relationship = bgp::PeerRelationship::kPeer;
    config->neighbors.push_back(peer);
    state.config = config;
    peer_view.id = 5;
    peer_view.remote_as = 5;
    peer_view.address = *bgp::Ipv4Address::Parse("10.0.0.5");
    peer_view.established = true;
  }

  std::vector<bgp::PeerView> AllPeers() const {
    return {customer_view, internet_view, peer_view};
  }

  bgp::PeerView peer_view;
};

TEST(RouteLeakCheckerTest, ArmsOnlyOnAnnotatedConfigs) {
  ProviderFixture plain;
  RouteLeakChecker checker;
  checker.OnCheckpoint(plain.state);
  EXPECT_FALSE(checker.armed());

  AnnotatedFixture annotated;
  checker.OnCheckpoint(annotated.state);
  EXPECT_TRUE(checker.armed());
}

TEST(RouteLeakCheckerTest, ImportSideValleyFires) {
  // The customer announces a path that transits AS 9 — an AS this router
  // pays for transit. The customer is re-exporting a provider route.
  AnnotatedFixture fixture;
  RouteLeakChecker checker;
  checker.OnCheckpoint(fixture.state);

  ExplorationOutcome outcome;
  outcome.input = SeedUpdate("203.0.113.0/24", {1, 9, 100});
  outcome.prefix = P("203.0.113.0/24");
  outcome.installed = true;
  bgp::RouterState after = fixture.state;
  std::vector<bgp::PeerView> peers = fixture.AllPeers();
  RunInfo info{0, &outcome, &after, &fixture.customer_view, &peers};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].checker, "route-leak");
  EXPECT_NE(detections[0].description.find("provider AS 9"), std::string::npos);
  EXPECT_NE(detections[0].description.find("valley"), std::string::npos);
  EXPECT_EQ(detections[0].prefix, outcome.prefix);
}

TEST(RouteLeakCheckerTest, CleanCustomerPathIsNotALeak) {
  // {1, 100} touches no provider or peer AS: the customer is announcing its
  // own cone, which is exactly what customers are for.
  AnnotatedFixture fixture;
  RouteLeakChecker checker;
  checker.OnCheckpoint(fixture.state);

  ExplorationOutcome outcome;
  outcome.input = SeedUpdate("10.1.7.0/24", {1, 100});
  outcome.prefix = P("10.1.7.0/24");
  outcome.installed = true;
  bgp::RouterState after = fixture.state;
  std::vector<bgp::PeerView> peers = fixture.AllPeers();
  RunInfo info{0, &outcome, &after, &fixture.customer_view, &peers};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  EXPECT_TRUE(detections.empty());
}

TEST(RouteLeakCheckerTest, ExportSideValleyFires) {
  // A provider-learned route becomes best and shows up in the Adj-RIB-Out
  // toward the settlement-free peer: our own export policy is the leak.
  AnnotatedFixture fixture;
  RouteLeakChecker checker;
  checker.OnCheckpoint(fixture.state);

  ExplorationOutcome outcome;
  outcome.input = SeedUpdate("203.0.113.0/24", {9, 64501});
  outcome.prefix = P("203.0.113.0/24");
  outcome.installed = true;
  outcome.became_best = true;
  bgp::RouterState after = fixture.state;
  after.adj_out[fixture.peer_view.id].Insert(outcome.prefix,
                                             bgp::InternedAttrs(outcome.input.attrs));
  std::vector<bgp::PeerView> peers = fixture.AllPeers();
  RunInfo info{0, &outcome, &after, &fixture.internet_view, &peers};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NE(detections[0].description.find("provider-learned"), std::string::npos);
  EXPECT_NE(detections[0].description.find("peer AS 5"), std::string::npos);
}

TEST(RouteLeakCheckerTest, ExportTowardCustomerIsAllowed) {
  // Same provider-learned best route, but the Adj-RIB-Out only advertises it
  // to the customer — the economically sound direction.
  AnnotatedFixture fixture;
  RouteLeakChecker checker;
  checker.OnCheckpoint(fixture.state);

  ExplorationOutcome outcome;
  outcome.input = SeedUpdate("203.0.113.0/24", {9, 64501});
  outcome.prefix = P("203.0.113.0/24");
  outcome.installed = true;
  outcome.became_best = true;
  bgp::RouterState after = fixture.state;
  after.adj_out[fixture.customer_view.id].Insert(outcome.prefix,
                                                 bgp::InternedAttrs(outcome.input.attrs));
  std::vector<bgp::PeerView> peers = fixture.AllPeers();
  RunInfo info{0, &outcome, &after, &fixture.internet_view, &peers};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  EXPECT_TRUE(detections.empty());
}

TEST(RouteLeakCheckerTest, RejectedInputsAndUnannotatedSessionsStayQuiet) {
  AnnotatedFixture fixture;
  RouteLeakChecker checker;
  checker.OnCheckpoint(fixture.state);

  // The filter rejected the valley-shaped input: nothing installed, no leak.
  ExplorationOutcome outcome;
  outcome.input = SeedUpdate("203.0.113.0/24", {1, 9, 100});
  outcome.prefix = P("203.0.113.0/24");
  outcome.installed = false;
  bgp::RouterState after = fixture.state;
  std::vector<bgp::PeerView> peers = fixture.AllPeers();
  RunInfo rejected{0, &outcome, &after, &fixture.customer_view, &peers};
  std::vector<Detection> detections;
  checker.OnRun(rejected, &detections);
  EXPECT_TRUE(detections.empty());

  // Accepted, but from a session the config does not annotate: the checker
  // has no relationship to reason about and must stay quiet.
  outcome.installed = true;
  bgp::PeerView stranger;
  stranger.id = 77;
  stranger.remote_as = 77;
  stranger.address = *bgp::Ipv4Address::Parse("10.0.0.77");
  stranger.established = true;
  RunInfo unannotated{0, &outcome, &after, &stranger, &peers};
  checker.OnRun(unannotated, &detections);
  EXPECT_TRUE(detections.empty());
}

// --- Explorer end-to-end: the §4.2 experiment ------------------------------------

TEST(ExplorerTest, DetectsRouteLeakThroughErroneousFilter) {
  // The provider's prefix-list erroneously contains the victim's space: the
  // filter accepts announcements there, and DiCE must find such an input by
  // negating the filter's branches.
  ProviderFixture fixture("208.65.152.0/22");

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate(), /*from=*/1);

  const ExplorationReport& report = explorer.report();
  ASSERT_FALSE(report.detections.empty())
      << "DiCE must find the leak: " << report.Summary();
  bool found_victim = false;
  for (const Detection& d : report.detections) {
    if (P("208.65.152.0/22").Covers(d.prefix)) {
      found_victim = true;
      EXPECT_EQ(d.old_origin, 36561u);
    }
  }
  EXPECT_TRUE(found_victim) << report.Summary();
  EXPECT_TRUE(report.first_detection_run.has_value());
}

TEST(ExplorerTest, SolverFastPathPreservesDetections) {
  // The §4.2 leak hunt with the solver optimizations off (pre-optimization
  // pipeline) and on must agree bit-for-bit: same runs, same paths, same
  // coverage, same detections.
  auto run = [](bool fast) {
    ProviderFixture fixture("208.65.152.0/22");
    ExplorerOptions options;
    options.concolic.max_runs = 200;
    options.concolic.solver.enable_slicing = fast;
    options.concolic.solver.enable_cache = fast;
    Explorer explorer(options);
    explorer.AddChecker(std::make_unique<HijackChecker>());
    explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
    explorer.ExploreSeed(SeedUpdate(), 1);
    return explorer.report();
  };
  ExplorationReport baseline = run(false);
  ExplorationReport fast = run(true);

  EXPECT_EQ(baseline.concolic.runs, fast.concolic.runs);
  EXPECT_EQ(baseline.concolic.unique_paths, fast.concolic.unique_paths);
  EXPECT_EQ(baseline.concolic.branches_covered, fast.concolic.branches_covered);
  ASSERT_EQ(baseline.detections.size(), fast.detections.size());
  for (size_t i = 0; i < baseline.detections.size(); ++i) {
    EXPECT_EQ(baseline.detections[i].prefix, fast.detections[i].prefix);
    EXPECT_EQ(baseline.detections[i].new_origin, fast.detections[i].new_origin);
    EXPECT_EQ(baseline.detections[i].old_origin, fast.detections[i].old_origin);
  }
  EXPECT_EQ(baseline.first_detection_run, fast.first_detection_run);
  // The fast run actually exercised the fast path.
  EXPECT_GT(fast.concolic.solver_atoms_sliced, 0u);
  EXPECT_GT(fast.concolic.solver_cache_hits + fast.concolic.solver_cache_misses, 0u)
      << "the cache must have been consulted";
}

TEST(ExplorerTest, LazyClonesPreserveResults) {
  // The state-layer fast path (copy-on-first-write clones) must be invisible
  // to exploration: same runs, same unique paths, same coverage, same
  // accept/reject split, same detections — only the copies differ.
  auto run = [](bool lazy) {
    ProviderFixture fixture("208.65.152.0/22");
    ExplorerOptions options;
    options.concolic.max_runs = 200;
    options.lazy_clones = lazy;
    Explorer explorer(options);
    explorer.AddChecker(std::make_unique<HijackChecker>());
    explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
    explorer.ExploreSeed(SeedUpdate(), 1);
    return explorer.report();
  };
  ExplorationReport eager = run(false);
  ExplorationReport lazy = run(true);

  EXPECT_EQ(eager.concolic.runs, lazy.concolic.runs);
  EXPECT_EQ(eager.concolic.unique_paths, lazy.concolic.unique_paths);
  EXPECT_EQ(eager.concolic.branches_covered, lazy.concolic.branches_covered);
  EXPECT_EQ(eager.runs_accepted, lazy.runs_accepted);
  EXPECT_EQ(eager.runs_rejected, lazy.runs_rejected);
  EXPECT_EQ(eager.intercepted_messages, lazy.intercepted_messages);
  ASSERT_EQ(eager.detections.size(), lazy.detections.size());
  for (size_t i = 0; i < eager.detections.size(); ++i) {
    EXPECT_EQ(eager.detections[i].prefix, lazy.detections[i].prefix);
    EXPECT_EQ(eager.detections[i].new_origin, lazy.detections[i].new_origin);
    EXPECT_EQ(eager.detections[i].old_origin, lazy.detections[i].old_origin);
    EXPECT_EQ(eager.detections[i].input, lazy.detections[i].input);
  }
  EXPECT_EQ(eager.first_detection_run, lazy.first_detection_run);

  // Accounting: eager mode copies a state per run; lazy mode copies only for
  // installing runs — rejected runs (the majority here) are zero-copy.
  EXPECT_EQ(eager.clones_avoided, 0u);
  EXPECT_EQ(eager.clones_materialized, eager.concolic.runs);
  EXPECT_GT(lazy.clones_avoided, 0u) << "reject runs must avoid the copy";
  EXPECT_EQ(lazy.clones_materialized, lazy.runs_accepted);
  EXPECT_EQ(lazy.clones_avoided + lazy.clones_materialized, lazy.clones_made);
}

TEST(ExplorerTest, CorrectFilterYieldsNoDetections) {
  ProviderFixture fixture;  // no erroneous entry
  ExplorerOptions options;
  options.concolic.max_runs = 150;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate(), 1);
  EXPECT_TRUE(explorer.report().detections.empty()) << explorer.report().Summary();
  EXPECT_GT(explorer.report().concolic.runs, 1u);
}

TEST(ExplorerTest, DetectsLeakWhenFilteringIsAbsent) {
  // The PCCW case: no customer filtering at all. The instrumented RIB lookup
  // provides the constraints that steer exploration into occupied table
  // regions.
  ProviderFixture fixture(nullptr, /*customer_filtering=*/false);
  ExplorerOptions options;
  options.concolic.max_runs = 400;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate(), 1);
  EXPECT_FALSE(explorer.report().detections.empty()) << explorer.report().Summary();
}

TEST(ExplorerTest, ExplorationNeverTouchesLiveState) {
  ProviderFixture fixture("208.65.152.0/22");
  bgp::RouterState before = fixture.state;  // snapshot for comparison

  ExplorerOptions options;
  options.concolic.max_runs = 100;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate(), 1);

  // The live state is bit-for-bit untouched: same prefixes, same bests.
  EXPECT_EQ(fixture.state.rib.PrefixCount(), before.rib.PrefixCount());
  size_t mismatches = 0;
  before.rib.Walk([&](const bgp::Prefix& prefix, const bgp::RibEntry& entry) {
    const bgp::Route* now = fixture.state.rib.BestRoute(prefix);
    if (now == nullptr || !(*now == *entry.BestRoute())) {
      ++mismatches;
    }
    return true;
  });
  EXPECT_EQ(mismatches, 0u);
  // And all clone messaging was intercepted, none delivered anywhere.
  EXPECT_EQ(explorer.report().intercepted_messages, explorer.intercepted().size());
}

TEST(ExplorerTest, InterceptedMessagesAreRecorded) {
  ProviderFixture fixture("208.65.152.0/22");
  ExplorerOptions options;
  options.concolic.max_runs = 100;
  Explorer explorer(options);
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate("10.1.9.0/24"), 1);
  // The seed run itself becomes best and propagates to peer 9 on the clone.
  ASSERT_FALSE(explorer.intercepted().empty());
  EXPECT_EQ(explorer.intercepted()[0].to, 9u);
}

TEST(ExplorerTest, IncrementalSteppingMatchesBatch) {
  ProviderFixture fixture("208.65.152.0/22");
  ExplorerOptions options;
  options.concolic.max_runs = 60;

  Explorer batch(options);
  batch.AddChecker(std::make_unique<HijackChecker>());
  batch.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  batch.ExploreSeed(SeedUpdate(), 1);

  Explorer stepper(options);
  stepper.AddChecker(std::make_unique<HijackChecker>());
  stepper.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  stepper.StartExploration(SeedUpdate(), 1);
  while (stepper.Step()) {
  }
  EXPECT_EQ(stepper.report().concolic.runs, batch.report().concolic.runs);
  EXPECT_EQ(stepper.report().detections.size(), batch.report().detections.size());
}

TEST(ExplorerTest, LocalNetworksCheckerStaysQuietOnHealthyRuns) {
  ProviderFixture fixture;
  auto config = std::make_shared<bgp::RouterConfig>(*fixture.state.config);
  config->networks.push_back(P("10.3.0.0/16"));
  fixture.state.config = config;
  bgp::Route local;
  local.peer = bgp::kLocalPeer;
  fixture.state.rib.AddRoute(P("10.3.0.0/16"), local);

  ExplorerOptions options;
  options.concolic.max_runs = 50;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<LocalNetworksIntactChecker>());
  explorer.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer.ExploreSeed(SeedUpdate(), 1);
  EXPECT_TRUE(explorer.report().detections.empty());
}

// --- Baselines --------------------------------------------------------------------

TEST(BaselinesTest, RandomFuzzRarelyFindsTheNeedleFilterHole) {
  // A narrow erroneous entry: random 32-bit addresses essentially never land
  // inside one /22 (probability ~2^-22 per try); the concolic explorer finds
  // it in tens of runs (see ExplorerTest.DetectsRouteLeakThroughErroneousFilter).
  ProviderFixture fixture("208.65.152.0/22");
  RandomFuzzExplorer fuzz(SymbolicUpdateSpec{}, /*seed=*/99);
  fuzz.AddChecker(std::make_unique<HijackChecker>());
  fuzz.TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  fuzz.Explore(SeedUpdate(), 1, 300);
  // With 300 runs the expected number of hits is ~300 * 2^-10-ish given the
  // legit /16 also exists; the victim /22 specifically should stay unfound.
  bool victim_found = false;
  for (const Detection& d : fuzz.detections()) {
    if (P("208.65.152.0/22").Covers(d.prefix)) {
      victim_found = true;
    }
  }
  EXPECT_FALSE(victim_found);
}

TEST(BaselinesTest, WholeMessageFuzzMostlyProducesInvalidMessages) {
  WholeMessageFuzzer fuzzer(7);
  WholeMessageFuzzStats stats = fuzzer.Run(SeedUpdate(), 2000, 4);
  EXPECT_EQ(stats.attempts, 2000u);
  // The §3.2 argument: byte-level mutation almost always breaks the message.
  EXPECT_LT(stats.ValidFraction(), 0.35);
  EXPECT_LE(stats.reached_routing_logic, stats.decode_update_ok);
}

TEST(BaselinesTest, ReplayCostScalesWithHistoryCheckpointDoesNot) {
  ProviderFixture fixture;
  checkpoint::CheckpointManager mgr;
  mgr.Take(fixture.state, fixture.Peers(), 0);

  std::vector<bgp::UpdateMessage> short_history;
  std::vector<bgp::UpdateMessage> long_history;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    bgp::UpdateMessage u = SeedUpdate();
    u.nlri[0] = bgp::Prefix::Make(bgp::Ipv4Address(0x0a010000u | (rng.NextU32() & 0xff00)), 24);
    if (i < 100) {
      short_history.push_back(u);
    }
    long_history.push_back(u);
  }
  ReplayCost short_cost = MeasureReplayFromInitial(*fixture.state.config, short_history,
                                                   fixture.customer_view, mgr);
  ReplayCost long_cost = MeasureReplayFromInitial(*fixture.state.config, long_history,
                                                  fixture.customer_view, mgr);
  EXPECT_GT(long_cost.replay_seconds, short_cost.replay_seconds);
  EXPECT_LT(short_cost.checkpoint_seconds, short_cost.replay_seconds + 1.0);
}

}  // namespace
}  // namespace dice
