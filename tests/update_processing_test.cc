// Direct unit tests for the update-processing core (import, export,
// Adj-RIB-Out synchronization, peer loss) — the code path shared between the
// live router and DiCE clones.

#include <gtest/gtest.h>

#include "src/bgp/update_processing.h"

namespace dice::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::Parse(s); }

struct Harness {
  Harness() {
    auto cfg = std::make_shared<RouterConfig>();
    cfg->name = "r";
    cfg->local_as = 3;
    cfg->router_id = *Ipv4Address::Parse("10.0.0.3");

    PrefixList customers;
    customers.name = "customers";
    customers.entries.push_back(PrefixListEntry{P("10.1.0.0/16"), 0, 24});
    EXPECT_TRUE(cfg->policies.AddPrefixList(std::move(customers)).ok());
    EXPECT_TRUE(
        cfg->policies.AddFilter(MakeCustomerImportFilter("customer-in", "customers")).ok());

    // Export filter that blocks a community.
    Filter no_export;
    no_export.name = "no-export-tagged";
    FilterTerm term;
    Match m;
    m.kind = MatchKind::kHasCommunity;
    m.community = kCommunityNoExport;
    term.matches.push_back(m);
    Action reject;
    reject.kind = ActionKind::kReject;
    term.actions.push_back(reject);
    no_export.terms.push_back(term);
    no_export.default_accept = true;
    EXPECT_TRUE(cfg->policies.AddFilter(std::move(no_export)).ok());

    NeighborConfig customer;
    customer.address = *Ipv4Address::Parse("10.0.0.1");
    customer.remote_as = 1;
    customer.import_filter = "customer-in";
    cfg->neighbors.push_back(customer);

    NeighborConfig upstream;
    upstream.address = *Ipv4Address::Parse("10.0.0.9");
    upstream.remote_as = 9;
    upstream.export_filter = "no-export-tagged";
    cfg->neighbors.push_back(upstream);

    state.config = cfg;

    customer_view.id = 1;
    customer_view.remote_as = 1;
    customer_view.address = *Ipv4Address::Parse("10.0.0.1");
    customer_view.established = true;
    upstream_view.id = 9;
    upstream_view.remote_as = 9;
    upstream_view.address = *Ipv4Address::Parse("10.0.0.9");
    upstream_view.established = true;
  }

  const NeighborConfig& customer_neighbor() const { return state.config->neighbors[0]; }
  const NeighborConfig& upstream_neighbor() const { return state.config->neighbors[1]; }
  std::vector<PeerView> Peers() const { return {customer_view, upstream_view}; }

  PathAttributes Attrs(std::vector<AsNumber> path) {
    PathAttributes a;
    a.origin = Origin::kIgp;
    a.as_path = AsPath::Sequence(std::move(path));
    a.next_hop = *Ipv4Address::Parse("10.0.0.1");
    return a;
  }

  RouterState state;
  PeerView customer_view;
  PeerView upstream_view;
};

TEST(IsMartianTest, Classification) {
  EXPECT_TRUE(IsMartian(P("0.0.0.0/0")));
  EXPECT_TRUE(IsMartian(P("127.0.0.0/8")));
  EXPECT_TRUE(IsMartian(P("127.1.2.0/24")));
  EXPECT_TRUE(IsMartian(P("224.0.0.0/4")));
  EXPECT_TRUE(IsMartian(P("240.0.0.0/8")));
  EXPECT_FALSE(IsMartian(P("10.0.0.0/8")));
  EXPECT_FALSE(IsMartian(P("203.0.113.0/24")));
  EXPECT_FALSE(IsMartian(P("128.0.0.0/1")));
}

TEST(ImportRouteTest, AcceptsListedAndAppliesActions) {
  Harness h;
  ImportOutcome out = ImportRoute(h.state, h.customer_view, h.customer_neighbor(),
                                  P("10.1.5.0/24"), h.Attrs({1, 100}));
  EXPECT_EQ(out.disposition, ImportDisposition::kAccepted);
  const Route* best = h.state.rib.BestRoute(P("10.1.5.0/24"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs->local_pref, 200u) << "set local-pref action must apply";
  EXPECT_EQ(h.state.routes_accepted, 1u);
}

TEST(ImportRouteTest, FiltersUnlisted) {
  Harness h;
  ImportOutcome out = ImportRoute(h.state, h.customer_view, h.customer_neighbor(),
                                  P("192.0.2.0/24"), h.Attrs({1, 100}));
  EXPECT_EQ(out.disposition, ImportDisposition::kFilteredOut);
  EXPECT_EQ(h.state.rib.PrefixCount(), 0u);
  EXPECT_EQ(h.state.routes_filtered, 1u);
}

TEST(ImportRouteTest, RejectsLoops) {
  Harness h;
  ImportOutcome out = ImportRoute(h.state, h.customer_view, h.customer_neighbor(),
                                  P("10.1.5.0/24"), h.Attrs({1, 3, 100}));
  EXPECT_EQ(out.disposition, ImportDisposition::kLoopRejected);
  EXPECT_EQ(h.state.routes_loop_rejected, 1u);
}

TEST(ImportRouteTest, RejectsMartians) {
  Harness h;
  ImportOutcome out = ImportRoute(h.state, h.customer_view, h.customer_neighbor(),
                                  P("127.0.0.0/8"), h.Attrs({1}));
  EXPECT_EQ(out.disposition, ImportDisposition::kMartianRejected);
}

TEST(ExportAttributesTest, EbgpTransformations) {
  Harness h;
  Route route;
  route.peer = 1;
  route.peer_as = 1;
  PathAttributes attrs = h.Attrs({1, 100});
  attrs.local_pref = 200;
  attrs.med = 50;
  route.attrs = std::move(attrs);

  auto exported = ExportAttributes(h.state, h.upstream_neighbor(),
                                   *Ipv4Address::Parse("10.0.0.3"), P("10.1.5.0/24"), route);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ((*exported)->as_path.ToString(), "3 1 100") << "own AS prepended";
  EXPECT_EQ((*exported)->next_hop.ToString(), "10.0.0.3") << "next-hop self";
  EXPECT_FALSE((*exported)->local_pref.has_value()) << "LOCAL_PREF stays in the AS";
  EXPECT_FALSE((*exported)->med.has_value()) << "MED not propagated onward";
}

TEST(ExportAttributesTest, ExportFilterRejects) {
  Harness h;
  Route route;
  route.peer = 1;
  route.peer_as = 1;
  PathAttributes attrs = h.Attrs({1, 100});
  attrs.communities.push_back(kCommunityNoExport);
  route.attrs = std::move(attrs);
  auto exported = ExportAttributes(h.state, h.upstream_neighbor(),
                                   *Ipv4Address::Parse("10.0.0.3"), P("10.1.5.0/24"), route);
  EXPECT_FALSE(exported.has_value());
}

TEST(SyncAdjOutTest, AdvertiseWithdrawCycle) {
  Harness h;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };

  // Install a route, sync: one advertisement.
  ImportRoute(h.state, h.customer_view, h.customer_neighbor(), P("10.1.5.0/24"),
              h.Attrs({1, 100}));
  SyncAdjOut(h.state, h.upstream_view, h.upstream_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, 9u);
  EXPECT_EQ(sent[0].second.nlri, std::vector<Prefix>{P("10.1.5.0/24")});

  // Re-sync with no change: silent (idempotent).
  SyncAdjOut(h.state, h.upstream_view, h.upstream_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  EXPECT_EQ(sent.size(), 1u);

  // Remove the route, sync: one withdraw.
  h.state.rib.RemoveRoute(P("10.1.5.0/24"), 1);
  SyncAdjOut(h.state, h.upstream_view, h.upstream_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].second.withdrawn, std::vector<Prefix>{P("10.1.5.0/24")});

  // Withdraw again: nothing advertised, nothing to withdraw.
  SyncAdjOut(h.state, h.upstream_view, h.upstream_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  EXPECT_EQ(sent.size(), 2u);
}

TEST(SyncAdjOutTest, SplitHorizon) {
  Harness h;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };
  ImportRoute(h.state, h.customer_view, h.customer_neighbor(), P("10.1.5.0/24"),
              h.Attrs({1, 100}));
  // Syncing toward the route's own source peer must do nothing.
  SyncAdjOut(h.state, h.customer_view, h.customer_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  EXPECT_TRUE(sent.empty());
}

TEST(SyncAdjOutTest, UnestablishedPeerSkipped) {
  Harness h;
  h.upstream_view.established = false;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };
  ImportRoute(h.state, h.customer_view, h.customer_neighbor(), P("10.1.5.0/24"),
              h.Attrs({1, 100}));
  SyncAdjOut(h.state, h.upstream_view, h.upstream_neighbor(), *Ipv4Address::Parse("10.0.0.3"),
             P("10.1.5.0/24"), sink);
  EXPECT_TRUE(sent.empty());
}

TEST(ProcessUpdateTest, AnnounceThenImplicitWithdrawPropagates) {
  Harness h;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };

  UpdateMessage announce;
  announce.attrs = h.Attrs({1, 100});
  announce.nlri.push_back(P("10.1.5.0/24"));
  ProcessUpdate(h.state, h.Peers(), h.customer_view, h.customer_neighbor(), announce, sink);
  ASSERT_EQ(sent.size(), 1u) << "advertised to the upstream only";
  EXPECT_EQ(sent[0].first, 9u);

  UpdateMessage withdraw;
  withdraw.withdrawn.push_back(P("10.1.5.0/24"));
  ProcessUpdate(h.state, h.Peers(), h.customer_view, h.customer_neighbor(), withdraw, sink);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_FALSE(sent[1].second.withdrawn.empty());
  EXPECT_EQ(h.state.updates_processed, 2u);
}

TEST(ProcessUpdateTest, UnchangedBestEmitsNothing) {
  Harness h;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };

  UpdateMessage good;
  good.attrs = h.Attrs({1, 100});
  good.nlri.push_back(P("10.1.5.0/24"));
  ProcessUpdate(h.state, h.Peers(), h.customer_view, h.customer_neighbor(), good, sink);
  size_t after_first = sent.size();

  // A filtered announcement changes nothing downstream.
  UpdateMessage filtered;
  filtered.attrs = h.Attrs({1, 100});
  filtered.nlri.push_back(P("192.0.2.0/24"));
  ProcessUpdate(h.state, h.Peers(), h.customer_view, h.customer_neighbor(), filtered, sink);
  EXPECT_EQ(sent.size(), after_first);
}

TEST(OriginateNetworksTest, InstallsAndAdvertises) {
  Harness h;
  auto cfg = std::make_shared<RouterConfig>(*h.state.config);
  cfg->networks.push_back(P("10.3.0.0/16"));
  h.state.config = cfg;

  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };
  OriginateNetworks(h.state, h.Peers(), *Ipv4Address::Parse("10.0.0.3"), sink);

  const Route* best = h.state.rib.BestRoute(P("10.3.0.0/16"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer, kLocalPeer);
  // Advertised to both established peers.
  EXPECT_EQ(sent.size(), 2u);
  for (const auto& [to, update] : sent) {
    EXPECT_EQ(update.attrs.as_path.ToString(), "3") << "origination carries only own AS";
  }
}

TEST(HandlePeerDownTest, FlushesAndWithdraws) {
  Harness h;
  std::vector<std::pair<PeerId, UpdateMessage>> sent;
  UpdateSink sink = [&](PeerId to, const UpdateMessage& u) { sent.push_back({to, u}); };

  UpdateMessage announce;
  announce.attrs = h.Attrs({1, 100});
  announce.nlri.push_back(P("10.1.5.0/24"));
  ProcessUpdate(h.state, h.Peers(), h.customer_view, h.customer_neighbor(), announce, sink);
  sent.clear();

  HandlePeerDown(h.state, h.Peers(), /*lost_peer=*/1, *Ipv4Address::Parse("10.0.0.3"), sink);
  EXPECT_EQ(h.state.rib.BestRoute(P("10.1.5.0/24")), nullptr);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, 9u);
  EXPECT_FALSE(sent[0].second.withdrawn.empty());
  EXPECT_EQ(h.state.adj_out.count(1), 0u) << "lost peer's Adj-RIB-Out dropped";
}


TEST(ExportAttributesTest, WellKnownNoExportCommunityBlocksExport) {
  Harness h;
  Route route;
  route.peer = 1;
  route.peer_as = 1;
  PathAttributes attrs = h.Attrs({1, 100});
  attrs.communities.push_back(kCommunityNoExport);
  route.attrs = attrs;
  // Even toward the neighbor with NO configured export filter, the RFC 1997
  // well-known community must block export.
  auto exported = ExportAttributes(h.state, h.customer_neighbor(),
                                   *Ipv4Address::Parse("10.0.0.3"), P("10.1.5.0/24"), route);
  EXPECT_FALSE(exported.has_value());

  attrs.communities = {kCommunityNoAdvertise};
  route.attrs = attrs;
  exported = ExportAttributes(h.state, h.customer_neighbor(),
                              *Ipv4Address::Parse("10.0.0.3"), P("10.1.5.0/24"), route);
  EXPECT_FALSE(exported.has_value());

  attrs.communities = {MakeCommunity(65000, 1)};  // ordinary community
  route.attrs = attrs;
  exported = ExportAttributes(h.state, h.customer_neighbor(),
                              *Ipv4Address::Parse("10.0.0.3"), P("10.1.5.0/24"), route);
  EXPECT_TRUE(exported.has_value());
}

}  // namespace
}  // namespace dice::bgp
