// Robustness tests for the federated exploration batch wire format: the
// buffers cross an administrative boundary, so Parse must answer truncation,
// version skew, corruption, and structurally malformed bodies with a
// util::Status — never a crash. The full matrix runs under the ASan preset
// like every other suite.

#include <gtest/gtest.h>

#include "src/bgp/wire.h"
#include "src/dice/exploration_service.h"
#include "src/util/bytes.h"

namespace dice {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

bgp::UpdateMessage MakeUpdate(const char* prefix, std::vector<bgp::AsNumber> path) {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.3");
  u.nlri.push_back(P(prefix));
  return u;
}

ExploratoryBatchRequest MakeRequest() {
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = 42;
  request.updates.push_back(MakeUpdate("203.0.113.0/24", {3, 1, 100}));
  request.updates.push_back(MakeUpdate("192.0.2.0/24", {3, 100}));
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(P("198.51.100.0/24"));
  request.updates.push_back(withdraw);
  return request;
}

ExploratoryBatchReply MakeReply() {
  ExploratoryBatchReply reply;
  reply.checkpoint_epoch = 42;
  NarrowReply a;
  a.prefix = P("203.0.113.0/24");
  a.accepted = true;
  a.adopted_as_best = true;
  a.would_propagate = 7;
  reply.replies.push_back(a);
  NarrowReply b;
  b.prefix = P("198.51.100.0/24");
  reply.replies.push_back(b);
  reply.counters.clones_materialized = 1;
  reply.counters.clones_avoided = 2;
  reply.counters.screen_cache_hits = 3;
  return reply;
}

TEST(ExplorationWireTest, RequestRoundTrips) {
  ExploratoryBatchRequest request = MakeRequest();
  Bytes wire = request.Serialize();
  StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, request);
}

TEST(ExplorationWireTest, EmptyRequestRoundTrips) {
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = 1;
  StatusOr<ExploratoryBatchRequest> parsed =
      ExploratoryBatchRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, request);
}

TEST(ExplorationWireTest, ReplyRoundTrips) {
  ExploratoryBatchReply reply = MakeReply();
  StatusOr<ExploratoryBatchReply> parsed = ExploratoryBatchReply::Parse(reply.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, reply);
}

TEST(ExplorationWireTest, EveryTruncationOfARequestIsAnError) {
  Bytes wire = MakeRequest().Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(len));
    StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(truncated);
    EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " bytes parsed";
  }
}

TEST(ExplorationWireTest, EveryTruncationOfAReplyIsAnError) {
  Bytes wire = MakeReply().Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(len));
    StatusOr<ExploratoryBatchReply> parsed = ExploratoryBatchReply::Parse(truncated);
    EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " bytes parsed";
  }
}

TEST(ExplorationWireTest, EverySingleBitFlipIsAnError) {
  // The checksum turns any single-bit corruption — header or body — into a
  // parse error instead of a silently different verdict.
  Bytes request_wire = MakeRequest().Serialize();
  for (size_t byte = 0; byte < request_wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = request_wire;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(flipped);
      EXPECT_FALSE(parsed.ok()) << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
  Bytes reply_wire = MakeReply().Serialize();
  for (size_t byte = 0; byte < reply_wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = reply_wire;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      StatusOr<ExploratoryBatchReply> parsed = ExploratoryBatchReply::Parse(flipped);
      EXPECT_FALSE(parsed.ok()) << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
}

TEST(ExplorationWireTest, VersionMismatchIsAnError) {
  ByteWriter body;
  body.PutU64(1);  // epoch
  body.PutU32(0);  // no updates
  Bytes wire = FrameExplorationMessage(kBatchRequestMagic, body.bytes(),
                                       kExplorationWireVersion + 1);
  StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos)
      << parsed.status();
}

TEST(ExplorationWireTest, RequestMagicDoesNotParseAsReply) {
  Bytes wire = MakeRequest().Serialize();
  EXPECT_FALSE(ExploratoryBatchReply::Parse(wire).ok());
  EXPECT_FALSE(ExploratoryBatchRequest::Parse(MakeReply().Serialize()).ok());
}

TEST(ExplorationWireTest, GarbageBuffersAreErrors) {
  EXPECT_FALSE(ExploratoryBatchRequest::Parse({}).ok());
  EXPECT_FALSE(ExploratoryBatchReply::Parse({}).ok());
  Bytes junk(64, 0xab);
  EXPECT_FALSE(ExploratoryBatchRequest::Parse(junk).ok());
  EXPECT_FALSE(ExploratoryBatchReply::Parse(junk).ok());
}

// Structurally malformed bodies behind a *valid* frame (magic, version,
// checksum all correct), so parsing reaches the body validators.

TEST(ExplorationWireTest, HugeUpdateCountIsAnError) {
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(0xffffffffu);  // claims 4G updates in a tiny buffer
  Bytes wire = FrameExplorationMessage(kBatchRequestMagic, body.bytes());
  StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("count"), std::string::npos) << parsed.status();
}

TEST(ExplorationWireTest, NonUpdateEntryIsAnError) {
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(1);
  Bytes keepalive = bgp::EncodeKeepalive();
  body.PutU16(static_cast<uint16_t>(keepalive.size()));
  body.PutBytes(keepalive);
  Bytes wire = FrameExplorationMessage(kBatchRequestMagic, body.bytes());
  StatusOr<ExploratoryBatchRequest> parsed = ExploratoryBatchRequest::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("UPDATE"), std::string::npos) << parsed.status();
}

TEST(ExplorationWireTest, TrailingBytesAreAnError) {
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(0);
  body.PutU8(0xcc);  // one byte too many
  Bytes wire = FrameExplorationMessage(kBatchRequestMagic, body.bytes());
  EXPECT_FALSE(ExploratoryBatchRequest::Parse(wire).ok());
}

TEST(ExplorationWireTest, ReplyWithBadPrefixLengthIsAnError) {
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(1);
  body.PutU8(33);  // prefix length > 32
  body.PutU32(0);
  body.PutU8(0);
  body.PutU64(0);
  body.PutU64(0);
  body.PutU64(0);
  body.PutU64(0);
  Bytes wire = FrameExplorationMessage(kBatchReplyMagic, body.bytes());
  EXPECT_FALSE(ExploratoryBatchReply::Parse(wire).ok());
}

TEST(ExplorationWireTest, ReplyWithUnknownFlagBitsIsAnError) {
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(1);
  bgp::EncodePrefix(body, P("203.0.113.0/24"));
  body.PutU8(0x80);  // reserved bit set
  body.PutU64(0);
  body.PutU64(0);
  body.PutU64(0);
  body.PutU64(0);
  Bytes wire = FrameExplorationMessage(kBatchReplyMagic, body.bytes());
  StatusOr<ExploratoryBatchReply> parsed = ExploratoryBatchReply::Parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("flag"), std::string::npos) << parsed.status();
}

// The wire decorator: what comes back has survived serialize -> parse in both
// directions, and a backend error propagates as a Status.
class FailingService : public ExplorationService {
 public:
  const std::string& domain_name() const override { return name_; }
  uint64_t TakeCheckpoint(net::SimTime) override { return 1; }
  StatusOr<ExploratoryBatchReply> ExecuteBatch(const ExploratoryBatchRequest&) override {
    return InternalError("backend down");
  }

 private:
  std::string name_ = "failing";
};

TEST(ExplorationWireTest, WireServicePropagatesBackendErrors) {
  WireExplorationService wire(std::make_unique<FailingService>());
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = 1;
  StatusOr<ExploratoryBatchReply> reply = wire.ExecuteBatch(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
  EXPECT_EQ(wire.rpcs(), 1u);
  EXPECT_GT(wire.request_bytes(), 0u);
  EXPECT_EQ(wire.reply_bytes(), 0u);
}

}  // namespace
}  // namespace dice
