// The shared-memory ring transport: raw ring semantics (round trips, ring
// wraparound, timeouts, shutdown signalling, stale-region recovery) and the
// full RPC stack served over shm, including bit-identity with a TCP-served
// twin of the same domain.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/transport/client.h"
#include "src/transport/server.h"
#include "src/transport/shm_ring.h"
#include "tests/transport_test_util.h"

namespace dice::transport {
namespace {

Bytes Pattern(size_t size, uint8_t seed) {
  Bytes bytes(size);
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return bytes;
}

struct RingPair {
  explicit RingPair(const Address& address) {
    StatusOr<std::unique_ptr<ShmRingTransport>> created =
        ShmRingTransport::Create(address);
    EXPECT_TRUE(created.ok()) << created.status();
    server = std::move(created).value();
    StatusOr<std::unique_ptr<ShmRingTransport>> opened =
        ShmRingTransport::Open(address, 2000);
    EXPECT_TRUE(opened.ok()) << opened.status();
    client = std::move(opened).value();
  }

  std::unique_ptr<ShmRingTransport> server;
  std::unique_ptr<ShmRingTransport> client;
};

TEST(ShmRingTest, RoundTripsBothDirections) {
  RingPair pair(UniqueShmAddress("rt"));
  Bytes ping = Pattern(1000, 1);
  ASSERT_TRUE(pair.client->SendFrame(ping, 1000).ok());
  StatusOr<Bytes> at_server = pair.server->RecvFrame(1000);
  ASSERT_TRUE(at_server.ok()) << at_server.status();
  EXPECT_EQ(*at_server, ping);

  Bytes pong = Pattern(2000, 9);
  ASSERT_TRUE(pair.server->SendFrame(pong, 1000).ok());
  StatusOr<Bytes> at_client = pair.client->RecvFrame(1000);
  ASSERT_TRUE(at_client.ok()) << at_client.status();
  EXPECT_EQ(*at_client, pong);

  EXPECT_EQ(pair.client->frames_sent(), 1u);
  EXPECT_EQ(pair.client->frames_received(), 1u);
  EXPECT_EQ(pair.server->bytes_received(), pair.client->bytes_sent());
}

TEST(ShmRingTest, EmptyAndLargeFramesSurvive) {
  RingPair pair(UniqueShmAddress("sz"));
  // An empty frame is legal (a zero-length record still carries its length).
  ASSERT_TRUE(pair.client->SendFrame(Bytes{}, 1000).ok());
  StatusOr<Bytes> empty = pair.server->RecvFrame(1000);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());

  // A frame a good fraction of the ring's capacity.
  Bytes big = Pattern(kShmRingCapacity / 2, 3);
  ASSERT_TRUE(pair.client->SendFrame(big, 1000).ok());
  StatusOr<Bytes> received = pair.server->RecvFrame(1000);
  ASSERT_TRUE(received.ok()) << received.status();
  EXPECT_EQ(*received, big);
}

TEST(ShmRingTest, ManyFramesForceWraparound) {
  // Push several capacities' worth of data through in odd-sized frames so
  // records straddle the ring boundary many times, with a concurrent drainer
  // providing the space the producer waits for.
  RingPair pair(UniqueShmAddress("wrap"));
  constexpr int kFrames = 64;
  const size_t frame_size = kShmRingCapacity / 7 + 13;  // never divides evenly

  std::thread drainer([&pair] {
    for (int i = 0; i < kFrames; ++i) {
      StatusOr<Bytes> frame = pair.server->RecvFrame(5000);
      ASSERT_TRUE(frame.ok()) << "frame " << i << ": " << frame.status();
      EXPECT_EQ(*frame, Pattern(frame_size, static_cast<uint8_t>(i)));
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    Status sent =
        pair.client->SendFrame(Pattern(frame_size, static_cast<uint8_t>(i)), 5000);
    ASSERT_TRUE(sent.ok()) << "frame " << i << ": " << sent;
  }
  drainer.join();
  EXPECT_EQ(pair.server->frames_received(), static_cast<uint64_t>(kFrames));
}

TEST(ShmRingTest, RecvTimesOutCleanly) {
  RingPair pair(UniqueShmAddress("timeout"));
  StatusOr<Bytes> nothing = pair.server->RecvFrame(30);
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ShmRingTest, SendTimesOutWhenPeerNeverDrains) {
  RingPair pair(UniqueShmAddress("full"));
  // Fill the ring without a consumer; eventually there is no space and the
  // bounded wait surfaces as DeadlineExceeded, not a hang.
  Bytes chunk = Pattern(kShmRingCapacity / 2, 5);
  Status status = Status::Ok();
  for (int i = 0; i < 8 && status.ok(); ++i) {
    status = pair.client->SendFrame(chunk, 30);
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ShmRingTest, ShutdownSurfacesAsFailedPrecondition) {
  RingPair pair(UniqueShmAddress("shutdown"));
  pair.server->Shutdown();
  EXPECT_TRUE(pair.client->shut_down());
  Status send = pair.client->SendFrame(Pattern(8, 1), 1000);
  EXPECT_EQ(send.code(), StatusCode::kFailedPrecondition);
  StatusOr<Bytes> recv = pair.client->RecvFrame(1000);
  ASSERT_FALSE(recv.ok());
  EXPECT_EQ(recv.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShmRingTest, ShutdownWakesABlockedReceiver) {
  RingPair pair(UniqueShmAddress("wake"));
  std::thread receiver([&pair] {
    StatusOr<Bytes> frame = pair.client->RecvFrame(10000);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kFailedPrecondition)
        << "shutdown must wake the receiver, not time it out";
  });
  pair.server->Shutdown();
  receiver.join();
}

TEST(ShmRingTest, ClientDisconnectDoesNotPoisonTheEndpoint) {
  Address address = UniqueShmAddress("reuse");
  StatusOr<std::unique_ptr<ShmRingTransport>> server =
      ShmRingTransport::Create(address);
  ASSERT_TRUE(server.ok()) << server.status();
  {
    StatusOr<std::unique_ptr<ShmRingTransport>> first =
        ShmRingTransport::Open(address, 2000);
    ASSERT_TRUE(first.ok()) << first.status();
    // First client goes away without Shutdown (its destructor must not set
    // the shutdown flag — only the server owns the endpoint's lifetime).
  }
  StatusOr<std::unique_ptr<ShmRingTransport>> second =
      ShmRingTransport::Open(address, 2000);
  ASSERT_TRUE(second.ok()) << "a departed client poisoned the endpoint: "
                           << second.status();
  ASSERT_TRUE((*second)->SendFrame(Pattern(16, 2), 1000).ok());
  StatusOr<Bytes> frame = (*server)->RecvFrame(1000);
  ASSERT_TRUE(frame.ok()) << frame.status();
}

TEST(ShmRingTest, CreateRecoversFromStaleRegion) {
  Address address = UniqueShmAddress("stale");
  {
    StatusOr<std::unique_ptr<ShmRingTransport>> crashed =
        ShmRingTransport::Create(address);
    ASSERT_TRUE(crashed.ok()) << crashed.status();
    // Simulate a crash: leak the mapping state by just destroying (the
    // destructor unlinks, but a real SIGKILL would not — recreate regardless).
  }
  StatusOr<std::unique_ptr<ShmRingTransport>> fresh = ShmRingTransport::Create(address);
  ASSERT_TRUE(fresh.ok()) << "Create must replace a stale region: " << fresh.status();
  StatusOr<std::unique_ptr<ShmRingTransport>> client =
      ShmRingTransport::Open(address, 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->SendFrame(Pattern(32, 4), 1000).ok());
  StatusOr<Bytes> frame = (*fresh)->RecvFrame(1000);
  ASSERT_TRUE(frame.ok()) << frame.status();
}

TEST(ShmRingTest, OpenTimesOutWhenNoServerExists) {
  Address address = UniqueShmAddress("noserver");
  StatusOr<std::unique_ptr<ShmRingTransport>> opened =
      ShmRingTransport::Open(address, 50);
  ASSERT_FALSE(opened.ok());
}

// --- The full RPC stack over shm ---------------------------------------------

TEST(ShmRpcTest, CheckpointAndBatchOverSharedMemory) {
  Address address = UniqueShmAddress("rpc");
  ExplorationServer server;
  auto owned = std::make_unique<FakeService>("upstream");
  FakeService* fake = owned.get();
  server.AddDomain(std::move(owned));
  ASSERT_TRUE(server.AddEndpoint(address).ok());
  ASSERT_TRUE(server.Start().ok());

  RpcChannel::Options options;
  options.connect_timeout_ms = 2000;
  options.call_timeout_ms = 10000;
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(address, options);
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  ASSERT_EQ(stubs->size(), 1u);
  ExplorationService& stub = *(*stubs)[0];

  ASSERT_EQ(stub.TakeCheckpoint(42), 1u);
  EXPECT_EQ(fake->last_checkpoint_now(), 42u);
  StatusOr<ExploratoryBatchReply> reply =
      stub.ExecuteBatch(TestBatch(1, {"203.0.113.0/24", "192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->replies.size(), 2u);
  EXPECT_TRUE(reply->replies[0].accepted);
  server.Stop();
}

TEST(ShmRpcTest, ShmAndTcpServeBitIdenticalReplies) {
  // The same deterministic service behind both transports: replies must be
  // equal field for field, whichever pipe the bytes took.
  Address shm_address = UniqueShmAddress("twin");
  ExplorationServer server;
  server.AddDomain(std::make_unique<FakeService>("upstream"));
  ASSERT_TRUE(server.AddEndpoint(shm_address).ok());
  ASSERT_TRUE(server.AddEndpoint(LoopbackAddress()).ok());
  ASSERT_TRUE(server.Start().ok());
  StatusOr<Address> tcp_address = server.BoundAddress(1);
  ASSERT_TRUE(tcp_address.ok()) << tcp_address.status();

  RpcChannel::Options options;
  options.connect_timeout_ms = 2000;
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> over_shm =
      ConnectRemoteDomains(shm_address, options);
  ASSERT_TRUE(over_shm.ok()) << over_shm.status();
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> over_tcp =
      ConnectRemoteDomains(*tcp_address, options);
  ASSERT_TRUE(over_tcp.ok()) << over_tcp.status();

  ExplorationService& shm_stub = *(*over_shm)[0];
  ExplorationService& tcp_stub = *(*over_tcp)[0];
  // One shared FakeService: epochs interleave, so checkpoint through each
  // stub in turn and compare batches executed at the same server epoch.
  ASSERT_EQ(shm_stub.TakeCheckpoint(7), 1u);
  StatusOr<ExploratoryBatchReply> shm_reply =
      shm_stub.ExecuteBatch(TestBatch(1, {"203.0.113.0/24"}));
  ASSERT_TRUE(shm_reply.ok()) << shm_reply.status();

  ASSERT_EQ(tcp_stub.TakeCheckpoint(7), 1u);
  StatusOr<ExploratoryBatchReply> tcp_reply =
      tcp_stub.ExecuteBatch(TestBatch(1, {"203.0.113.0/24"}));
  ASSERT_TRUE(tcp_reply.ok()) << tcp_reply.status();

  // The fake tags would_propagate with the answering epoch (2 for the second
  // checkpoint) — normalize that, then demand bit-identity.
  ExploratoryBatchReply normalized_shm = *shm_reply;
  ExploratoryBatchReply normalized_tcp = *tcp_reply;
  for (NarrowReply& narrow : normalized_shm.replies) {
    narrow.would_propagate = 0;
  }
  for (NarrowReply& narrow : normalized_tcp.replies) {
    narrow.would_propagate = 0;
  }
  EXPECT_EQ(normalized_shm, normalized_tcp);
  server.Stop();
}

}  // namespace
}  // namespace dice::transport
