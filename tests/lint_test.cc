// Tests for tools/lint: the dice_lint analyzer itself.
//
// Two layers: unit tests drive LintFiles on in-memory sources (one per
// detection mechanism — token checks, alias/name tracking, suppressions,
// declaration matching, comment/string blanking); the fixture test runs
// RunLint over tools/testdata/lint/ — a mini repo of known-bad and known-good
// files — and asserts the exact findings. The exit-code contract of the
// binary is covered by ctest cases registered in tools/CMakeLists.txt
// (lint_fixture_violations is WILL_FAIL; lint_repo_clean must pass).

#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dice::lint {
namespace {

// (file, line, check) triples, sorted — message wording is not contract.
std::vector<std::string> Sites(const LintReport& report) {
  std::vector<std::string> out;
  for (const Finding& f : report.findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.check);
  }
  return out;
}

LintReport Lint(const std::string& path, const std::string& content) {
  return LintFiles({{path, content}});
}

TEST(LintTokens, FlagsRawRngOutsideRngUtil) {
  LintReport r = Lint("src/foo.cc",
                      "#include <random>\n"
                      "int f() { std::mt19937 g(1); return rand() + g(); }\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.cc:2:raw-rng", "src/foo.cc:2:raw-rng"}));
}

TEST(LintTokens, AllowsRawRngInRngUtil) {
  EXPECT_TRUE(Lint("src/util/rng.cc", "int f() { return rand(); }\n").clean());
}

TEST(LintTokens, RandRequiresCall) {
  // 'rand' as a plain identifier (variable named rand, operand) only counts
  // when invoked; 'strand(' must never match.
  EXPECT_TRUE(Lint("src/foo.cc", "int strand(int x); int g(int rand) { return rand; }\n").clean());
  EXPECT_FALSE(Lint("src/foo.cc", "int g() { return rand(); }\n").clean());
}

TEST(LintTokens, FlagsWallClockOutsideAllowlist) {
  const std::string source = "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(Sites(Lint("src/net/loop.h", source)),
            (std::vector<std::string>{"src/net/loop.h:2:wall-clock"}));
  EXPECT_TRUE(Lint("bench/common.h", source).clean());
  EXPECT_TRUE(Lint("src/dice/baselines.cc", source).clean());
  EXPECT_TRUE(Lint("src/util/logging.cc", source).clean());
}

TEST(LintTokens, WallClockPersistAllowlistIsEnvOnly) {
  // The persistence Env may read the clock (quarantine file timestamps);
  // every other persist file must route time through Env::NowMicros so
  // fault-injection tests fully control it.
  const std::string source = "#include <time.h>\nvoid f() { clock_gettime(0, nullptr); }\n";
  EXPECT_TRUE(Lint("src/persist/env.cc", source).clean());
  EXPECT_EQ(Sites(Lint("src/persist/snapshot_store.cc", source)),
            (std::vector<std::string>{"src/persist/snapshot_store.cc:2:wall-clock"}));
  EXPECT_EQ(Sites(Lint("src/persist/env.h", source)),
            (std::vector<std::string>{"src/persist/env.h:2:wall-clock"}));
}

TEST(LintTokens, WallClockTransportAllowlistIsByFileNotDirectory) {
  // The transport layer touches real time by nature (socket deadlines,
  // reconnect backoff, futex waits, latency counters), but only the four
  // reviewed .cc files — new transport files must either stay clock-free or
  // be added to the allowlist in review. Headers stay clock-free entirely.
  const std::string source = "#include <time.h>\nvoid f() { clock_gettime(0, nullptr); }\n";
  EXPECT_TRUE(Lint("src/transport/stream.cc", source).clean());
  EXPECT_TRUE(Lint("src/transport/shm_ring.cc", source).clean());
  EXPECT_TRUE(Lint("src/transport/server.cc", source).clean());
  EXPECT_TRUE(Lint("src/transport/client.cc", source).clean());
  EXPECT_EQ(Sites(Lint("src/transport/stream.h", source)),
            (std::vector<std::string>{"src/transport/stream.h:2:wall-clock"}));
  EXPECT_EQ(Sites(Lint("src/transport/wire.cc", source)),
            (std::vector<std::string>{"src/transport/wire.cc:2:wall-clock"}));
  EXPECT_EQ(Sites(Lint("src/transport/reactor.cc", source)),
            (std::vector<std::string>{"src/transport/reactor.cc:2:wall-clock"}));
}

TEST(LintTokens, IgnoresTokensInCommentsAndStrings) {
  LintReport r = Lint("src/foo.cc",
                      "// std::mt19937 would be bad here\n"
                      "/* so would steady_clock */\n"
                      "const char* kMsg = \"mt19937 rand() steady_clock\";\n");
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(LintUnordered, FlagsRangeForOverUnorderedLocal) {
  LintReport r = Lint("src/foo.cc",
                      "#include <unordered_map>\n"
                      "int f() {\n"
                      "  std::unordered_map<int, int> m;\n"
                      "  int s = 0;\n"
                      "  for (const auto& [k, v] : m) { s += v; }\n"
                      "  return s;\n"
                      "}\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.cc:5:unordered-iteration"}));
}

TEST(LintUnordered, OnlyAppliesUnderSrc) {
  LintReport r = Lint("examples/demo.cpp",
                      "#include <unordered_map>\n"
                      "void f(std::unordered_map<int, int>& m) { for (auto& kv : m) { (void)kv; } }\n");
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(LintUnordered, TracksAliasesTransitively) {
  LintReport r = Lint("src/foo.cc",
                      "#include <unordered_set>\n"
                      "using IdSet = std::unordered_set<int>;\n"
                      "int f(const IdSet& ids) {\n"
                      "  int s = 0;\n"
                      "  for (int id : ids) { s += id; }\n"
                      "  return s;\n"
                      "}\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.cc:5:unordered-iteration"}));
}

TEST(LintUnordered, TracksMemberNamesAcrossFiles) {
  // The member is declared unordered in the header; the iteration lives in
  // another file and only sees `entry.members`.
  LintReport r = LintFiles({
      {"src/foo.h", "#include <unordered_map>\n"
                    "struct Entry { std::unordered_map<int, int> members; };\n"},
      {"src/bar.cc", "#include \"src/foo.h\"\n"
                     "int f(const Entry& entry) {\n"
                     "  int s = 0;\n"
                     "  for (const auto& [k, v] : entry.members) { s += v; }\n"
                     "  return s;\n"
                     "}\n"},
  });
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/bar.cc:4:unordered-iteration"}));
}

TEST(LintUnordered, FlagsIteratorBeginLoop) {
  LintReport r = Lint("src/foo.cc",
                      "#include <unordered_map>\n"
                      "int f() {\n"
                      "  std::unordered_map<int, int> m;\n"
                      "  int s = 0;\n"
                      "  for (auto it = m.begin(); it != m.end(); ++it) { s += it->second; }\n"
                      "  return s;\n"
                      "}\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.cc:5:unordered-iteration"}));
}

TEST(LintUnordered, BeginOutsideForIsNotIteration) {
  // std::find over an unordered container reads it via begin() but a lookup
  // is order-insensitive by construction; only `for` loops are flagged.
  LintReport r = Lint("src/foo.cc",
                      "#include <algorithm>\n"
                      "#include <unordered_set>\n"
                      "bool f(const std::unordered_set<int>& s) {\n"
                      "  auto copy = s;\n"
                      "  return std::find(copy.begin(), copy.end(), 3) != copy.end();\n"
                      "}\n");
  EXPECT_TRUE(r.clean()) << r.ToString();
}

TEST(LintUnordered, SuppressionOnSameOrPreviousLine) {
  const std::string body =
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  // dice-lint: unordered-iteration-ok(commutative sum)\n"
      "  for (const auto& [k, v] : m) { s += v; }\n"
      "  for (const auto& [k, v] : m) { s += v; }  // dice-lint: unordered-iteration-ok(same)\n"
      "  return s;\n"
      "}\n";
  LintReport r = Lint("src/foo.cc", body);
  EXPECT_TRUE(r.clean()) << r.ToString();
  ASSERT_EQ(r.suppressed.size(), 2u);
  EXPECT_EQ(r.suppressed[0].line, 6u);
  EXPECT_EQ(r.suppressed[0].reason, "commutative sum");
  EXPECT_EQ(r.suppressed[1].line, 7u);
}

TEST(LintUnordered, UnusedSuppressionIsAFinding) {
  LintReport r = Lint("src/foo.cc",
                      "int f() {\n"
                      "  // dice-lint: unordered-iteration-ok(nothing here anymore)\n"
                      "  return 1;\n"
                      "}\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.cc:2:suppression"}));
}

TEST(LintStatus, FlagsMissingNodiscardInHeadersOnly) {
  const std::string decl = "class Status {};\nStatus DoThing();\n";
  EXPECT_EQ(Sites(Lint("src/foo.h", decl)),
            (std::vector<std::string>{"src/foo.h:2:status-nodiscard"}));
  // Definitions in .cc files are not re-annotated.
  EXPECT_TRUE(Lint("src/foo.cc", decl).clean());
}

TEST(LintStatus, AcceptsNodiscardOnSameOrPreviousLine) {
  EXPECT_TRUE(Lint("src/foo.h",
                   "[[nodiscard]] Status DoThing();\n"
                   "[[nodiscard]] static StatusOr<int> Maybe();\n"
                   "[[nodiscard]]\n"
                   "Status AlsoFine();\n")
                  .clean());
}

TEST(LintStatus, IgnoresVariablesReturnsAndConstructors) {
  EXPECT_TRUE(Lint("src/foo.h",
                   "Status status_;\n"
                   "Status s = DoThing();\n"
                   "Status() : code_(0) {}\n"
                   "StatusOr<int> held;\n"
                   "StatusCode CodeName();\n")
                  .clean());
}

TEST(LintStatus, FlagsParseAndDeserializeReturningBoolOrVoid) {
  LintReport r = Lint("src/foo.h",
                      "bool ParseFrame(const char* d, int n);\n"
                      "void DeserializeState(int v);\n"
                      "[[nodiscard]] StatusOr<int> ParseGood(const char* d);\n");
  EXPECT_EQ(Sites(r), (std::vector<std::string>{"src/foo.h:1:parse-returns-status",
                                                "src/foo.h:2:parse-returns-status"}));
}

TEST(LintFixture, ExactFindingsOverFixtureTree) {
  LintOptions options;
  options.root = DICE_LINT_FIXTURE_DIR;
  options.paths = {"src", "bench"};
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(Sites(*report), (std::vector<std::string>{
                                "src/bad_clock.cc:6:wall-clock",
                                "src/bad_clock.cc:7:wall-clock",
                                "src/bad_iter.cc:8:unordered-iteration",
                                "src/bad_rng.cc:6:raw-rng",
                                "src/bad_rng.cc:7:raw-rng",
                                "src/bad_rng.cc:8:raw-rng",
                                "src/bad_status.h:9:status-nodiscard",
                                "src/bad_status.h:10:status-nodiscard",
                                "src/bad_status.h:11:parse-returns-status",
                                "src/bad_status.h:12:parse-returns-status",
                                "src/bad_suppress.cc:4:suppression",
                                "src/bad_suppress.cc:8:suppression",
                                "src/bad_suppress.cc:9:suppression",
                            }));
  ASSERT_EQ(report->suppressed.size(), 1u);
  EXPECT_EQ(report->suppressed[0].file, "src/good_iter.cc");
  EXPECT_EQ(report->suppressed[0].reason, "commutative sum; order cannot be observed");
  EXPECT_EQ(report->files_scanned, 9u);
}

TEST(LintFixture, KnownGoodFilesAreClean) {
  LintOptions options;
  options.root = DICE_LINT_FIXTURE_DIR;
  options.paths = {"src/good_iter.cc", "src/good_status.h", "src/util/rng.h", "bench/timer.cc"};
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->suppressed.size(), 1u);
}

TEST(LintFixture, MissingRootIsAnErrorNotAFinding) {
  LintOptions options;
  options.root = std::string(DICE_LINT_FIXTURE_DIR) + "/does-not-exist";
  auto report = RunLint(options);
  EXPECT_FALSE(report.ok());
}

TEST(LintRepo, ShardedNetFilesIntroduceNoFindings) {
  // The sharded event loop is the determinism-critical merge path: hold
  // src/net to zero findings specifically, and require a reviewed reason on
  // any unordered-iteration-ok suppression someone adds there.
  LintOptions options;
  options.root = DICE_REPO_ROOT;
  options.paths = {"src/net"};
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_GE(report->files_scanned, 3u);  // event_loop, network, sharded loop
  for (const SuppressedSite& s : report->suppressed) {
    EXPECT_FALSE(s.reason.empty())
        << s.file << ":" << s.line << " suppression without a reason";
  }
}

TEST(LintRepo, TransportFilesIntroduceNoFindings) {
  // The transport subsystem crosses the process boundary, which makes it the
  // easiest place to smuggle in nondeterminism (ad-hoc clocks, unordered
  // correlation maps). Pin the directory to zero findings: its sanctioned
  // clock use lives only in the four .cc files named in the allowlist, and
  // everything else must come up clean without suppressions.
  LintOptions options;
  options.root = DICE_REPO_ROOT;
  options.paths = {"src/transport"};
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_GE(report->files_scanned, 14u);  // 7 modules, header + impl each
  EXPECT_TRUE(report->suppressed.empty())
      << "transport code must not need unordered-iteration suppressions";
}

TEST(LintRepo, TraceFilesIntroduceNoFindings) {
  // The trace corpus feeds deterministic replay: a wall clock or unordered
  // map iteration in src/trace would break the bit-identical gen|replay
  // round-trip, so the directory is pinned to zero findings with no
  // suppressions at all.
  LintOptions options;
  options.root = DICE_REPO_ROOT;
  options.paths = {"src/trace"};
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_GE(report->files_scanned, 6u);  // trace, feed, dtrc — header + impl each
  EXPECT_TRUE(report->suppressed.empty())
      << "trace code must not need unordered-iteration suppressions";
}

TEST(LintRepo, RealTreeIsClean) {
  // The ratchet: the shipped tree has zero findings, and every suppressed
  // site carries a reviewed reason. DICE_REPO_ROOT is the source dir.
  LintOptions options;
  options.root = DICE_REPO_ROOT;
  auto report = RunLint(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  for (const SuppressedSite& s : report->suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
}

}  // namespace
}  // namespace dice::lint
