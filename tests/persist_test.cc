// Tests for the durable-state I/O layer (src/persist): the Env seam, the
// atomic write protocol, deterministic fault injection, and the generation
// store with quarantine. The fault matrix kills the write at every mutating
// operation — and, for torn writes, at every byte boundary — then proves a
// fresh "process" still loads a good generation: corruption costs warmth,
// never correctness and never a crash.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>

#include "src/persist/env.h"
#include "src/persist/snapshot_store.h"
#include "src/util/frame.h"

namespace dice::persist {
namespace {

// --- in-memory Env ---------------------------------------------------------

// Faithful enough for the store's protocol: files live under created
// directories, renames are atomic, ListDir returns sorted basenames, and the
// clock is a counter (deterministic quarantine names).
class MemEnv : public Env {
 public:
  StatusOr<Bytes> ReadFile(const std::string& path) override {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFoundError("no such file: " + path);
    }
    return it->second;
  }

  Status WriteFile(const std::string& path, const Bytes& data) override {
    if (!ParentExists(path)) {
      return NotFoundError("no such directory for: " + path);
    }
    files_[path] = data;
    return Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    auto it = files_.find(from);
    if (it == files_.end()) {
      return NotFoundError("no such file: " + from);
    }
    if (!ParentExists(to)) {
      return NotFoundError("no such directory for: " + to);
    }
    files_[to] = std::move(it->second);
    files_.erase(it);
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (files_.erase(path) == 0) {
      return NotFoundError("no such file: " + path);
    }
    return Status::Ok();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    if (dirs_.count(dir) == 0) {
      return NotFoundError("no such directory: " + dir);
    }
    std::vector<std::string> names;
    const std::string prefix = dir + "/";
    for (const auto& [path, bytes] : files_) {  // std::map: sorted already
      if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        names.push_back(path.substr(prefix.size()));
      }
    }
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    dirs_.insert(dir);
    return Status::Ok();
  }

  Status SyncFile(const std::string& path) override {
    if (files_.count(path) == 0) {
      return NotFoundError("no such file: " + path);
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    if (dirs_.count(dir) == 0) {
      return NotFoundError("no such directory: " + dir);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return files_.count(path) > 0 || dirs_.count(path) > 0;
  }

  uint64_t NowMicros() override { return ++clock_; }

 private:
  bool ParentExists(const std::string& path) const {
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos || dirs_.count(path.substr(0, slash)) > 0;
  }

  std::map<std::string, Bytes> files_;
  std::set<std::string> dirs_;
  uint64_t clock_ = 0;
};

Bytes B(const char* s) {
  const auto* p = reinterpret_cast<const uint8_t*>(s);
  return Bytes(p, p + strlen(s));
}

// A tiny framed payload so parse failures are the real checksum/format
// rejections the production snapshots rely on.
constexpr uint32_t kTestMagic = 0x54534e50;  // "TSNP"

Bytes Framed(const char* payload) { return FrameMessage(kTestMagic, 1, B(payload)); }

// Parses a framed test snapshot; on success appends the payload to `out`.
Status ParseFramed(const Bytes& bytes, std::string* out) {
  StatusOr<ByteReader> r = OpenFrame(bytes, kTestMagic, 1, "test snapshot");
  if (!r.ok()) {
    return r.status();
  }
  out->clear();
  while (!r->AtEnd()) {
    auto byte = r->ReadU8();
    if (!byte.ok()) {
      return byte.status();
    }
    out->push_back(static_cast<char>(*byte));
  }
  return Status::Ok();
}

// --- PosixEnv on a real filesystem ----------------------------------------

TEST(PosixEnvTest, RoundTripsThroughRealFilesystem) {
  PosixEnv env;
  const std::string dir = ::testing::TempDir() + "dice_persist_posix_test";
  ASSERT_TRUE(env.CreateDir(dir).ok());
  ASSERT_TRUE(env.CreateDir(dir).ok()) << "existing directory is success";
  const std::string file = JoinPath(dir, "a.bin");

  EXPECT_EQ(env.ReadFile(file).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(env.FileExists(file));

  ASSERT_TRUE(env.WriteFile(file, B("hello")).ok());
  ASSERT_TRUE(env.SyncFile(file).ok());
  ASSERT_TRUE(env.SyncDir(dir).ok());
  EXPECT_TRUE(env.FileExists(file));
  auto read = env.ReadFile(file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, B("hello"));

  const std::string renamed = JoinPath(dir, "b.bin");
  ASSERT_TRUE(env.RenameFile(file, renamed).ok());
  EXPECT_FALSE(env.FileExists(file));
  auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"b.bin"}));

  ASSERT_TRUE(env.DeleteFile(renamed).ok());
  EXPECT_FALSE(env.FileExists(renamed));
}

TEST(PosixEnvTest, AtomicWriteReplacesAndLeavesNoTemp) {
  PosixEnv env;
  const std::string dir = ::testing::TempDir() + "dice_persist_atomic_test";
  ASSERT_TRUE(env.CreateDir(dir).ok());
  const std::string file = JoinPath(dir, "state.bin");

  ASSERT_TRUE(AtomicWriteFile(env, file, B("one")).ok());
  ASSERT_TRUE(AtomicWriteFile(env, file, B("two")).ok());
  auto read = env.ReadFile(file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, B("two"));
  auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"state.bin"})) << "no temp residue";
}

// --- FaultInjectingEnv -----------------------------------------------------

TEST(FaultInjectingEnvTest, DryRunCountsMutatingOps) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{});  // kNone: count only
  ASSERT_TRUE(AtomicWriteFile(env, "/d/f", B("payload")).ok());
  // write temp, fsync temp, rename, fsync dir.
  EXPECT_EQ(env.mutating_ops(), 4u);
  EXPECT_FALSE(env.fired());
}

TEST(FaultInjectingEnvTest, ShortWriteSurfacesErrorAndKeepsOldFile) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  ASSERT_TRUE(base.WriteFile("/d/f", B("old")).ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{FaultKind::kShortWrite, /*trigger_op=*/0, /*boundary=*/2});
  Status s = AtomicWriteFile(env, "/d/f", B("replacement"));
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(env.fired());
  auto read = base.ReadFile("/d/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, B("old")) << "failed atomic write must not touch the target";
}

TEST(FaultInjectingEnvTest, TornWriteKillsEverySubsequentOp) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{FaultKind::kTornWrite, 0, 3});
  EXPECT_FALSE(AtomicWriteFile(env, "/d/f", B("payload")).ok());
  // The process is "off": everything fails until re-Arm (reboot).
  EXPECT_FALSE(env.WriteFile("/d/g", B("x")).ok());
  EXPECT_FALSE(env.ReadFile("/d/f.tmp").ok());
  env.Arm(FaultPlan{});
  EXPECT_TRUE(env.WriteFile("/d/g", B("x")).ok());
}

TEST(FaultInjectingEnvTest, BitFlipIsSilent) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{FaultKind::kBitFlip, 0, /*bit=*/1});
  ASSERT_TRUE(env.WriteFile("/d/f", B("a")).ok()) << "silent corruption reports success";
  auto read = base.ReadFile("/d/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], uint8_t('a') ^ 0x02u);
}

TEST(FaultInjectingEnvTest, NoSpaceIsResourceExhausted) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{FaultKind::kNoSpace, 0, 1});
  Status s = env.WriteFile("/d/f", B("abc"));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(FaultInjectingEnvTest, FsyncFailureIsAnError) {
  MemEnv base;
  ASSERT_TRUE(base.CreateDir("/d").ok());
  ASSERT_TRUE(base.WriteFile("/d/f", B("old")).ok());
  FaultInjectingEnv env(base);
  env.Arm(FaultPlan{FaultKind::kFsyncFail, /*trigger_op=*/1, 0});  // the temp fsync
  EXPECT_FALSE(AtomicWriteFile(env, "/d/f", B("replacement")).ok());
  auto read = base.ReadFile("/d/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, B("old"));
}

// --- SnapshotStore ---------------------------------------------------------

TEST(SnapshotStoreTest, SavesAscendingGenerationsAndPrunes) {
  MemEnv env;
  SnapshotStore store(env, "/state", "cache");
  auto g1 = store.Save(Framed("one"));
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(*g1, 1u);
  auto g2 = store.Save(Framed("two"));
  ASSERT_TRUE(g2.ok());
  auto g3 = store.Save(Framed("three"));
  ASSERT_TRUE(g3.ok());
  EXPECT_EQ(*g3, 3u);
  auto generations = store.Generations();
  ASSERT_TRUE(generations.ok());
  EXPECT_EQ(*generations, (std::vector<uint64_t>{2, 3})) << "older generations pruned";
}

TEST(SnapshotStoreTest, LoadLatestPrefersNewestGeneration) {
  MemEnv env;
  SnapshotStore store(env, "/state", "cache");
  ASSERT_TRUE(store.Save(Framed("one")).ok());
  ASSERT_TRUE(store.Save(Framed("two")).ok());
  std::string payload;
  auto generation =
      store.LoadLatest([&](const Bytes& b) { return ParseFramed(b, &payload); });
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 2u);
  EXPECT_EQ(payload, "two");
  EXPECT_EQ(store.quarantined(), 0u);
}

TEST(SnapshotStoreTest, EmptyStoreIsNotFound) {
  MemEnv env;
  SnapshotStore store(env, "/state", "cache");
  auto generation = store.LoadLatest([](const Bytes&) { return Status::Ok(); });
  EXPECT_EQ(generation.status().code(), StatusCode::kNotFound);
  auto generations = store.Generations();
  ASSERT_TRUE(generations.ok());
  EXPECT_TRUE(generations->empty());
}

TEST(SnapshotStoreTest, CorruptNewestIsQuarantinedAndPreviousLoads) {
  MemEnv env;
  SnapshotStore store(env, "/state", "cache");
  ASSERT_TRUE(store.Save(Framed("good")).ok());
  ASSERT_TRUE(store.Save(Framed("newest")).ok());
  // Flip one bit of generation 2 on "disk".
  auto bytes = env.ReadFile("/state/cache.00000002.snap");
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x10u;
  ASSERT_TRUE(env.WriteFile("/state/cache.00000002.snap", *bytes).ok());

  std::string payload;
  auto generation =
      store.LoadLatest([&](const Bytes& b) { return ParseFramed(b, &payload); });
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 1u) << "previous generation shadows the corrupt one";
  EXPECT_EQ(payload, "good");
  EXPECT_EQ(store.quarantined(), 1u);

  // The corrupt file survives under a quarantine name and never shadows a
  // future Save or Load.
  auto names = env.ListDir("/state");
  ASSERT_TRUE(names.ok());
  bool quarantine_present = false;
  for (const std::string& name : *names) {
    quarantine_present |= name.find(".corrupt-") != std::string::npos;
  }
  EXPECT_TRUE(quarantine_present);
  auto generations = store.Generations();
  ASSERT_TRUE(generations.ok());
  EXPECT_EQ(*generations, (std::vector<uint64_t>{1}));
  auto g3 = store.Save(Framed("recovered"));
  ASSERT_TRUE(g3.ok());
  EXPECT_EQ(*g3, 2u);
}

TEST(SnapshotStoreTest, IgnoresForeignAndMalformedNames) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("/state").ok());
  ASSERT_TRUE(env.WriteFile("/state/cache.00000001.snap.tmp", B("t")).ok());
  ASSERT_TRUE(env.WriteFile("/state/cache.00000001.snap.corrupt-5", B("q")).ok());
  ASSERT_TRUE(env.WriteFile("/state/other.00000009.snap", B("o")).ok());
  ASSERT_TRUE(env.WriteFile("/state/cache.notanumber.snap", B("n")).ok());
  SnapshotStore store(env, "/state", "cache");
  auto generations = store.Generations();
  ASSERT_TRUE(generations.ok());
  EXPECT_TRUE(generations->empty());
}

// --- the crash matrix ------------------------------------------------------

// Every mutating operation of a Save, killed with every fault kind — and
// torn/short writes cut at every byte boundary of the snapshot — then a
// fresh store over the surviving files must load a complete good payload.
TEST(SnapshotStoreCrashMatrix, EveryFaultLeavesALoadableGeneration) {
  const Bytes next = Framed("generation-two-payload");

  // Baseline: one good generation on disk, then a dry run sizes the matrix.
  MemEnv baseline;
  {
    SnapshotStore store(baseline, "/state", "cache");
    ASSERT_TRUE(store.Save(Framed("generation-one")).ok());
  }
  uint64_t total_ops = 0;
  {
    MemEnv env = baseline;
    FaultInjectingEnv faulty(env);
    faulty.Arm(FaultPlan{});
    SnapshotStore store(faulty, "/state", "cache");
    ASSERT_TRUE(store.Save(next).ok());
    total_ops = faulty.mutating_ops();
  }
  ASSERT_GE(total_ops, 4u);

  uint64_t cells = 0;
  for (uint64_t op = 0; op < total_ops; ++op) {
    std::vector<FaultPlan> plans;
    plans.push_back({FaultKind::kFsyncFail, op, 0});
    plans.push_back({FaultKind::kNoSpace, op, next.size() / 2});
    for (size_t boundary = 0; boundary <= next.size(); boundary += 1) {
      plans.push_back({FaultKind::kTornWrite, op, boundary});
    }
    plans.push_back({FaultKind::kShortWrite, op, 0});
    plans.push_back({FaultKind::kShortWrite, op, next.size() / 3});
    for (const FaultPlan& plan : plans) {
      ++cells;
      MemEnv env = baseline;
      {
        FaultInjectingEnv faulty(env);
        faulty.Arm(plan);
        SnapshotStore store(faulty, "/state", "cache");
        // The save may fail — that is the point. It must never crash.
        store.Save(next).status().ok();
      }
      // "Reboot": a fresh store over the base env (the fault is gone, the
      // bytes it left are not). A good generation must still load.
      SnapshotStore recovered(env, "/state", "cache");
      std::string payload;
      auto generation =
          recovered.LoadLatest([&](const Bytes& b) { return ParseFramed(b, &payload); });
      ASSERT_TRUE(generation.ok())
          << "fault kind " << static_cast<int>(plan.kind) << " at op " << plan.trigger_op
          << " boundary " << plan.boundary << ": " << generation.status().ToString();
      EXPECT_TRUE(payload == "generation-one" || payload == "generation-two-payload")
          << "loaded a payload that was never written whole: " << payload;
    }
  }
  // Matrix actually covered the write at every boundary for every op.
  EXPECT_GE(cells, total_ops * (next.size() + 5));
}

// Bit flips are silent (the write "succeeds"), so detection falls entirely
// to the frame checksum at load time: every flipped bit must either
// quarantine (falling back to generation one) or — if it hit the temp file
// of an aborted path — leave the good generations alone.
TEST(SnapshotStoreCrashMatrix, EverySilentBitFlipIsCaughtAtLoad) {
  const Bytes next = Framed("bitflip-target");
  MemEnv baseline;
  {
    SnapshotStore store(baseline, "/state", "cache");
    ASSERT_TRUE(store.Save(Framed("generation-one")).ok());
  }
  for (size_t bit = 0; bit < next.size() * 8; ++bit) {
    MemEnv env = baseline;
    {
      FaultInjectingEnv faulty(env);
      // Op 0 is the temp-file write of the new generation.
      faulty.Arm(FaultPlan{FaultKind::kBitFlip, 0, bit});
      SnapshotStore store(faulty, "/state", "cache");
      auto saved = store.Save(next);
      ASSERT_TRUE(saved.ok()) << "bit flips are silent by definition";
    }
    SnapshotStore recovered(env, "/state", "cache");
    std::string payload;
    auto generation =
        recovered.LoadLatest([&](const Bytes& b) { return ParseFramed(b, &payload); });
    ASSERT_TRUE(generation.ok()) << "bit " << bit << ": " << generation.status().ToString();
    EXPECT_TRUE(payload == "generation-one" || payload == "bitflip-target")
        << "bit " << bit << " produced a phantom payload: " << payload;
    if (payload == "generation-one") {
      EXPECT_EQ(recovered.quarantined(), 1u) << "fallback must be due to quarantine";
    }
  }
}

}  // namespace
}  // namespace dice::persist
