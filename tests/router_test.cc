// Integration tests: routers over the simulated network — session
// establishment, route propagation, filters, withdraws, split horizon,
// loop rejection, and the Fig. 2 topology.

#include <gtest/gtest.h>

#include "src/bgp/router.h"
#include "src/bgp/wire.h"

namespace dice::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::Parse(s); }

RouterConfig SimpleConfig(const std::string& name, AsNumber asn, const std::string& id,
                          std::vector<std::pair<std::string, AsNumber>> neighbors,
                          std::vector<std::string> networks = {}) {
  RouterConfig config;
  config.name = name;
  config.local_as = asn;
  config.router_id = *Ipv4Address::Parse(id);
  for (const auto& n : networks) {
    config.networks.push_back(P(n.c_str()));
  }
  for (const auto& [addr, remote_as] : neighbors) {
    NeighborConfig nc;
    nc.address = *Ipv4Address::Parse(addr);
    nc.remote_as = remote_as;
    config.neighbors.push_back(nc);
  }
  return config;
}

class TwoRouterTest : public ::testing::Test {
 protected:
  TwoRouterTest()
      : net_(&loop_),
        a_(1, SimpleConfig("a", 65001, "10.0.0.1", {{"10.0.0.2", 65002}}, {"203.0.113.0/24"}),
           &net_),
        b_(2, SimpleConfig("b", 65002, "10.0.0.2", {{"10.0.0.1", 65001}}, {"198.51.100.0/24"}),
           &net_) {
    net_.AddNode(&a_);
    net_.AddNode(&b_);
    a_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.2"), 2);
    b_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.1"), 1);
  }

  void StartAndConverge() {
    a_.Start();
    b_.Start();
    net_.Connect(1, 2, net::kMillisecond);
    loop_.RunFor(10 * net::kSecond);
  }

  net::EventLoop loop_;
  net::Network net_;
  Router a_;
  Router b_;
};

TEST_F(TwoRouterTest, SessionsEstablish) {
  StartAndConverge();
  EXPECT_TRUE(a_.Established(2));
  EXPECT_TRUE(b_.Established(1));
}

TEST_F(TwoRouterTest, NetworksPropagateBothWays) {
  StartAndConverge();
  const Route* at_b = b_.rib().BestRoute(P("203.0.113.0/24"));
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->attrs->as_path.ToString(), "65001");
  EXPECT_EQ(at_b->attrs->next_hop.ToString(), "10.0.0.1");
  EXPECT_EQ(at_b->peer_as, 65001u);

  const Route* at_a = a_.rib().BestRoute(P("198.51.100.0/24"));
  ASSERT_NE(at_a, nullptr);
  EXPECT_EQ(at_a->attrs->as_path.ToString(), "65002");
}

TEST_F(TwoRouterTest, EbgpExportStripsLocalPrefAndMed) {
  StartAndConverge();
  const Route* at_b = b_.rib().BestRoute(P("203.0.113.0/24"));
  ASSERT_NE(at_b, nullptr);
  EXPECT_FALSE(at_b->attrs->local_pref.has_value());
  EXPECT_FALSE(at_b->attrs->med.has_value());
}

TEST_F(TwoRouterTest, LinkLossFlushesLearnedRoutes) {
  StartAndConverge();
  ASSERT_NE(b_.rib().BestRoute(P("203.0.113.0/24")), nullptr);
  net_.Disconnect(1, 2);
  loop_.RunFor(net::kSecond);
  EXPECT_EQ(b_.rib().BestRoute(P("203.0.113.0/24")), nullptr);
  // Own network survives.
  EXPECT_NE(b_.rib().BestRoute(P("198.51.100.0/24")), nullptr);
}

TEST_F(TwoRouterTest, LastUpdatesRecorded) {
  StartAndConverge();
  ASSERT_EQ(b_.last_updates().count(1), 1u);
  EXPECT_FALSE(b_.last_updates().at(1).nlri.empty());
}

TEST_F(TwoRouterTest, UpdateObserverFires) {
  int observed = 0;
  b_.set_update_observer([&](net::NodeId from, const UpdateMessage&) {
    EXPECT_EQ(from, 1u);
    ++observed;
  });
  StartAndConverge();
  EXPECT_GE(observed, 1);
}

TEST_F(TwoRouterTest, MalformedBytesCountDecodeErrors) {
  StartAndConverge();
  net_.Send(1, 2, Bytes{1, 2, 3});
  loop_.RunFor(net::kSecond);
  EXPECT_EQ(b_.decode_errors(), 1u);
  EXPECT_TRUE(b_.Established(1)) << "junk from a peer must not kill processing";
}

// --- Three-router chain: propagation, split horizon, loop rejection -----------

class ChainTest : public ::testing::Test {
 protected:
  // a(65001) -- m(65002) -- c(65003); only m peers with both.
  ChainTest()
      : net_(&loop_),
        a_(1, SimpleConfig("a", 65001, "10.0.0.1", {{"10.0.0.2", 65002}}, {"203.0.113.0/24"}),
           &net_),
        m_(2, SimpleConfig("m", 65002, "10.0.0.2", {{"10.0.0.1", 65001}, {"10.0.0.3", 65003}}),
           &net_),
        c_(3, SimpleConfig("c", 65003, "10.0.0.3", {{"10.0.0.2", 65002}}, {"198.51.100.0/24"}),
           &net_) {
    net_.AddNode(&a_);
    net_.AddNode(&m_);
    net_.AddNode(&c_);
    a_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.2"), 2);
    m_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.1"), 1);
    m_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.3"), 3);
    c_.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.2"), 2);
    a_.Start();
    m_.Start();
    c_.Start();
    net_.Connect(1, 2, net::kMillisecond);
    net_.Connect(2, 3, net::kMillisecond);
    loop_.RunFor(10 * net::kSecond);
  }

  net::EventLoop loop_;
  net::Network net_;
  Router a_;
  Router m_;
  Router c_;
};

TEST_F(ChainTest, TransitPropagationAppendsAsPath) {
  const Route* at_c = c_.rib().BestRoute(P("203.0.113.0/24"));
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attrs->as_path.ToString(), "65002 65001");
  EXPECT_EQ(at_c->attrs->next_hop.ToString(), "10.0.0.2") << "next-hop-self at each eBGP hop";

  const Route* at_a = a_.rib().BestRoute(P("198.51.100.0/24"));
  ASSERT_NE(at_a, nullptr);
  EXPECT_EQ(at_a->attrs->as_path.ToString(), "65002 65003");
}

TEST_F(ChainTest, WithdrawPropagatesThroughTransit) {
  ASSERT_NE(c_.rib().BestRoute(P("203.0.113.0/24")), nullptr);
  net_.Disconnect(1, 2);
  loop_.RunFor(2 * net::kSecond);
  EXPECT_EQ(m_.rib().BestRoute(P("203.0.113.0/24")), nullptr);
  EXPECT_EQ(c_.rib().BestRoute(P("203.0.113.0/24")), nullptr);
}

TEST_F(ChainTest, SplitHorizonNoEchoBack) {
  // a must not have its own 203.0.113.0/24 echoed back as a learned route:
  // the only candidate is its local one.
  auto candidates = a_.rib().Candidates(P("203.0.113.0/24"));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].peer, kLocalPeer);
}

TEST_F(ChainTest, LoopingAnnouncementRejected) {
  // Craft an UPDATE at m claiming a path that already contains m's AS; m must
  // reject it (AS-path loop detection).
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = AsPath::Sequence({65001, 65002, 65009});
  u.attrs.next_hop = *Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(P("192.0.2.0/24"));
  net_.Send(1, 2, Encode(Message(u)));
  loop_.RunFor(net::kSecond);
  EXPECT_EQ(m_.rib().BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(m_.state().routes_loop_rejected, 1u);
}

TEST_F(ChainTest, MartianAnnouncementRejected) {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = AsPath::Sequence({65001});
  u.attrs.next_hop = *Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(P("127.0.0.0/8"));
  net_.Send(1, 2, Encode(Message(u)));
  loop_.RunFor(net::kSecond);
  EXPECT_EQ(m_.rib().BestRoute(P("127.0.0.0/8")), nullptr);
}

TEST_F(ChainTest, BetterRouteReplacesAndPropagates) {
  // c learns 203.0.113.0/24 via m with path "65002 65001". Now a announces a
  // longer path for a new prefix, then improves it; c must follow.
  UpdateMessage worse;
  worse.attrs.origin = Origin::kIgp;
  worse.attrs.as_path = AsPath::Sequence({65001, 64999, 64998});
  worse.attrs.next_hop = *Ipv4Address::Parse("10.0.0.1");
  worse.nlri.push_back(P("192.0.2.0/24"));
  net_.Send(1, 2, Encode(Message(worse)));
  loop_.RunFor(net::kSecond);
  const Route* at_c = c_.rib().BestRoute(P("192.0.2.0/24"));
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attrs->as_path.EffectiveLength(), 4u);

  UpdateMessage better = worse;
  better.attrs.as_path = AsPath::Sequence({65001, 64999});
  net_.Send(1, 2, Encode(Message(better)));
  loop_.RunFor(net::kSecond);
  at_c = c_.rib().BestRoute(P("192.0.2.0/24"));
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attrs->as_path.EffectiveLength(), 3u);
}

// --- Import filter applied inside the router ----------------------------------

TEST(RouterFilterTest, ImportFilterDropsUnlistedPrefixes) {
  net::EventLoop loop;
  net::Network net(&loop);

  RouterConfig provider = SimpleConfig("provider", 3, "10.0.0.3", {});
  PrefixList customers;
  customers.name = "customers";
  customers.entries.push_back(PrefixListEntry{P("10.1.0.0/16"), 0, 24});
  ASSERT_TRUE(provider.policies.AddPrefixList(std::move(customers)).ok());
  ASSERT_TRUE(provider.policies.AddFilter(
      MakeCustomerImportFilter("customer-in", "customers")).ok());
  NeighborConfig nc;
  nc.address = *Ipv4Address::Parse("10.0.0.1");
  nc.remote_as = 1;
  nc.import_filter = "customer-in";
  provider.neighbors.push_back(nc);

  RouterConfig customer =
      SimpleConfig("customer", 1, "10.0.0.1", {{"10.0.0.3", 3}},
                   {"10.1.7.0/24", "192.0.2.0/24"});

  Router p(1, std::move(provider), &net);
  Router c(2, std::move(customer), &net);
  net.AddNode(&p);
  net.AddNode(&c);
  p.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.1"), 2);
  c.RegisterPeerNode(*Ipv4Address::Parse("10.0.0.3"), 1);
  p.Start();
  c.Start();
  net.Connect(1, 2, net::kMillisecond);
  loop.RunFor(10 * net::kSecond);

  // Listed customer prefix accepted with elevated local-pref...
  const Route* listed = p.rib().BestRoute(P("10.1.7.0/24"));
  ASSERT_NE(listed, nullptr);
  EXPECT_EQ(listed->attrs->local_pref, 200u);
  // ...but the leak (192.0.2.0/24 is not the customer's) is filtered.
  EXPECT_EQ(p.rib().BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(p.state().routes_filtered, 1u);
}

}  // namespace
}  // namespace dice::bgp
