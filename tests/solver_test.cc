// Tests for the path-condition solver: linearization, interval propagation,
// SAT/UNSAT verdicts, disjunction handling, and a verification property over
// random constraint systems.

#include <gtest/gtest.h>

#include "src/sym/solver.h"
#include "src/util/rng.h"

namespace dice::sym {
namespace {

using solver_internal::Interval;
using solver_internal::LinCmp;
using solver_internal::Linearize;

std::vector<VarInfo> Vars(std::initializer_list<std::pair<uint64_t, uint64_t>> domains,
                          uint8_t bits = 32) {
  std::vector<VarInfo> out;
  VarId id = 0;
  for (auto [lo, hi] : domains) {
    VarInfo v;
    v.id = id++;
    v.bits = bits;
    v.lo = lo;
    v.hi = hi;
    v.seed = lo;
    out.push_back(v);
  }
  return out;
}

ExprPtr V(VarId id, uint8_t bits = 32) { return Expr::MakeVar(id, bits); }
ExprPtr C(uint64_t v, uint8_t bits = 32) { return Expr::MakeConst(v, bits); }

// --- Linearize -----------------------------------------------------------------

TEST(LinearizeTest, SimpleComparison) {
  auto atom = Linearize(Expr::ULe(V(0), C(10)));
  ASSERT_TRUE(atom.has_value());
  EXPECT_EQ(atom->cmp, LinCmp::kLe);
  EXPECT_EQ(atom->rhs, 10);
  ASSERT_EQ(atom->terms.size(), 1u);
  EXPECT_EQ(atom->terms[0].coef, 1);
}

TEST(LinearizeTest, MovesEverythingLeft) {
  // x + 3 < y  =>  x - y <= -4
  auto atom = Linearize(Expr::ULt(Expr::Add(V(0), C(3)), V(1)));
  ASSERT_TRUE(atom.has_value());
  EXPECT_EQ(atom->cmp, LinCmp::kLe);
  EXPECT_EQ(atom->rhs, -4);
  ASSERT_EQ(atom->terms.size(), 2u);
}

TEST(LinearizeTest, MulByConstAndShl) {
  // 3*x + (y << 2) == 20
  auto atom = Linearize(
      Expr::Eq(Expr::Add(Expr::Mul(C(3), V(0)), Expr::Shl(V(1), C(2))), C(20)));
  ASSERT_TRUE(atom.has_value());
  EXPECT_EQ(atom->rhs, 20);
  int64_t coef0 = 0;
  int64_t coef1 = 0;
  for (const auto& t : atom->terms) {
    (t.var == 0 ? coef0 : coef1) = t.coef;
  }
  EXPECT_EQ(coef0, 3);
  EXPECT_EQ(coef1, 4);
}

TEST(LinearizeTest, CancellingTermsDropOut) {
  // x - x + y <= 5  => y <= 5
  auto atom = Linearize(Expr::ULe(Expr::Add(Expr::Sub(V(0), V(0)), V(1)), C(5)));
  ASSERT_TRUE(atom.has_value());
  ASSERT_EQ(atom->terms.size(), 1u);
  EXPECT_EQ(atom->terms[0].var, 1u);
}

TEST(LinearizeTest, RejectsNonLinear) {
  EXPECT_FALSE(Linearize(Expr::Eq(Expr::Mul(V(0), V(1)), C(6))).has_value());
  EXPECT_FALSE(Linearize(Expr::Eq(Expr::AndBits(V(0), C(0xff)), C(1))).has_value());
  EXPECT_FALSE(Linearize(Expr::Eq(Expr::Shr(V(0), C(2)), C(1))).has_value());
  EXPECT_FALSE(Linearize(Expr::MakeVar(0, 1)).has_value()) << "bare var is not a comparison";
}

// --- Solve: basic verdicts -------------------------------------------------------

TEST(SolverTest, SingleEquality) {
  Solver solver;
  auto vars = Vars({{0, 1000}});
  auto result = solver.Solve({Expr::Eq(V(0), C(42))}, vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0), 42u);
}

TEST(SolverTest, RangeConjunction) {
  Solver solver;
  auto vars = Vars({{0, 0xffffffff}});
  auto result = solver.Solve({Expr::UGe(V(0), C(100)), Expr::ULe(V(0), C(110)),
                              Expr::Ne(V(0), C(105))},
                             vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_GE(result.model.at(0), 100u);
  EXPECT_LE(result.model.at(0), 110u);
  EXPECT_NE(result.model.at(0), 105u);
}

TEST(SolverTest, UnsatByIntervals) {
  Solver solver;
  auto vars = Vars({{0, 50}});
  auto result = solver.Solve({Expr::UGe(V(0), C(100))}, vars, {});
  EXPECT_EQ(result.kind, SolveKind::kUnsat);

  result = solver.Solve({Expr::UGt(V(0), C(10)), Expr::ULt(V(0), C(5))}, vars, {});
  EXPECT_EQ(result.kind, SolveKind::kUnsat);
}

TEST(SolverTest, DomainBoundsRespected) {
  Solver solver;
  auto vars = Vars({{0, 32}}, 8);  // e.g. a prefix length
  auto result = solver.Solve({Expr::UGt(V(0, 8), C(24, 8))}, vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_GT(result.model.at(0), 24u);
  EXPECT_LE(result.model.at(0), 32u);
}

TEST(SolverTest, TwoVariableDifference) {
  Solver solver;
  auto vars = Vars({{0, 100}, {0, 100}});
  // x - y == 7, x <= 20
  auto result = solver.Solve({Expr::Eq(Expr::Sub(V(0), V(1)), C(7)), Expr::ULe(V(0), C(20))},
                             vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0) - result.model.at(1), 7u);
  EXPECT_LE(result.model.at(0), 20u);
}

TEST(SolverTest, DisjunctionPicksFeasibleBranch) {
  Solver solver;
  auto vars = Vars({{0, 50}});
  // (x >= 100 || x == 33)
  auto constraint = Expr::LOr(Expr::UGe(V(0), C(100)), Expr::Eq(V(0), C(33)));
  auto result = solver.Solve({constraint}, vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0), 33u);
}

TEST(SolverTest, NestedDisjunctionAllInfeasible) {
  Solver solver;
  auto vars = Vars({{0, 50}});
  auto constraint = Expr::LOr(Expr::UGe(V(0), C(100)),
                              Expr::LOr(Expr::UGe(V(0), C(200)), Expr::UGe(V(0), C(300))));
  auto result = solver.Solve({constraint}, vars, {});
  EXPECT_EQ(result.kind, SolveKind::kUnsat);
}

TEST(SolverTest, NegationViaLNot) {
  Solver solver;
  auto vars = Vars({{0, 100}});
  // !(x < 50) && x < 60  =>  50 <= x < 60
  auto result = solver.Solve({Expr::LNot(Expr::ULt(V(0), C(50))), Expr::ULt(V(0), C(60))},
                             vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_GE(result.model.at(0), 50u);
  EXPECT_LT(result.model.at(0), 60u);
}

TEST(SolverTest, HintFastPath) {
  Solver solver;
  auto vars = Vars({{0, 1000}});
  Assignment hint{{0, 77}};
  auto result = solver.Solve({Expr::Eq(V(0), C(77))}, vars, hint);
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0), 77u);
  EXPECT_EQ(solver.stats().queries, 1u);
}

TEST(SolverTest, PrefixRangeConstraintShape) {
  // The constraint shape prefix-list matching produces:
  // addr in [0x0a010000, 0x0a01ffff] && len in [16, 24], plus the negation
  // of the "already matched" entry.
  Solver solver;
  auto vars = Vars({{0, 0xffffffff}, {0, 32}});
  auto addr_in = Expr::LAnd(Expr::UGe(V(0), C(0x0a010000)), Expr::ULe(V(0), C(0x0a01ffff)));
  auto len_in = Expr::LAnd(Expr::UGe(V(1), C(16)), Expr::ULe(V(1), C(24)));
  auto not_first = Expr::LNot(Expr::LAnd(
      Expr::LAnd(Expr::UGe(V(0), C(0x0a010000)), Expr::ULe(V(0), C(0x0a0100ff))),
      Expr::Eq(V(1), C(24))));
  auto result = solver.Solve({addr_in, len_in, not_first}, vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  uint64_t addr = result.model.at(0);
  uint64_t len = result.model.at(1);
  EXPECT_GE(addr, 0x0a010000u);
  EXPECT_LE(addr, 0x0a01ffffu);
  EXPECT_GE(len, 16u);
  EXPECT_LE(len, 24u);
  EXPECT_FALSE(addr >= 0x0a010000 && addr <= 0x0a0100ff && len == 24);
}

TEST(SolverTest, NonLinearFallback) {
  Solver solver;
  auto vars = Vars({{0, 255}});
  // (x & 0x0f) == 0x05 — non-linear; the stochastic fallback must find one.
  auto result = solver.Solve({Expr::Eq(Expr::AndBits(V(0), C(0x0f)), C(0x05))}, vars, {});
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0) & 0x0f, 0x05u);
  EXPECT_GT(solver.stats().atoms_nonlinear, 0u);
}

TEST(SolverTest, StatsAccumulate) {
  Solver solver;
  auto vars = Vars({{0, 10}});
  solver.Solve({Expr::Eq(V(0), C(3))}, vars, {});
  solver.Solve({Expr::UGe(V(0), C(100))}, vars, {});
  EXPECT_EQ(solver.stats().queries, 2u);
  EXPECT_EQ(solver.stats().sat, 1u);
  EXPECT_EQ(solver.stats().unsat, 1u);
}

// --- Property: every kSat model satisfies the constraints -----------------------

class SolverSatProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverSatProperty, ModelsVerify) {
  Rng rng(GetParam());
  Solver solver;
  size_t sat_count = 0;

  for (int iter = 0; iter < 120; ++iter) {
    const size_t nvars = 1 + rng.NextBelow(3);
    std::vector<VarInfo> vars;
    for (size_t i = 0; i < nvars; ++i) {
      VarInfo v;
      v.id = static_cast<VarId>(i);
      v.bits = 16;
      v.lo = 0;
      v.hi = 200;
      v.seed = rng.NextBelow(200);
      vars.push_back(v);
    }
    auto term = [&]() -> ExprPtr {
      ExprPtr e = V(static_cast<VarId>(rng.NextBelow(nvars)), 16);
      if (rng.NextBool(0.4)) {
        e = Expr::Add(e, V(static_cast<VarId>(rng.NextBelow(nvars)), 16));
      }
      if (rng.NextBool(0.3)) {
        e = Expr::Mul(e, C(1 + rng.NextBelow(4), 16));
      }
      return e;
    };
    auto atom = [&]() -> ExprPtr {
      ExprPtr lhs = term();
      ExprPtr rhs = C(rng.NextBelow(400), 16);
      switch (rng.NextBelow(6)) {
        case 0: return Expr::Eq(lhs, rhs);
        case 1: return Expr::Ne(lhs, rhs);
        case 2: return Expr::ULt(lhs, rhs);
        case 3: return Expr::ULe(lhs, rhs);
        case 4: return Expr::UGt(lhs, rhs);
        default: return Expr::UGe(lhs, rhs);
      }
    };
    std::vector<ExprPtr> constraints;
    size_t n = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      ExprPtr c = atom();
      if (rng.NextBool(0.3)) {
        c = Expr::LOr(c, atom());
      }
      constraints.push_back(c);
    }

    auto result = solver.Solve(constraints, vars, {});
    if (result.kind == SolveKind::kSat) {
      ++sat_count;
      for (const ExprPtr& c : constraints) {
        EXPECT_NE(c->Eval(result.model), 0u)
            << "model must satisfy " << c->ToString();
      }
    }
  }
  // Random systems over small domains are mostly satisfiable; the solver
  // should find a good share of them.
  EXPECT_GT(sat_count, 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSatProperty, ::testing::Values(11, 22, 33, 44));

// Property: UNSAT verdicts are sound — brute force agrees on tiny domains.
class SolverUnsatProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverUnsatProperty, UnsatNeverLies) {
  Rng rng(GetParam());
  Solver solver;
  for (int iter = 0; iter < 150; ++iter) {
    VarInfo v;
    v.id = 0;
    v.bits = 8;
    v.lo = 0;
    v.hi = 15;
    v.seed = rng.NextBelow(16);
    std::vector<VarInfo> vars{v};

    std::vector<ExprPtr> constraints;
    size_t n = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      ExprPtr lhs = V(0, 8);
      ExprPtr rhs = C(rng.NextBelow(20), 8);
      switch (rng.NextBelow(4)) {
        case 0: constraints.push_back(Expr::Eq(lhs, rhs)); break;
        case 1: constraints.push_back(Expr::ULt(lhs, rhs)); break;
        case 2: constraints.push_back(Expr::UGt(lhs, rhs)); break;
        default: constraints.push_back(Expr::Ne(lhs, rhs)); break;
      }
    }
    auto result = solver.Solve(constraints, vars, {});
    bool brute_sat = false;
    for (uint64_t x = 0; x <= 15 && !brute_sat; ++x) {
      bool all = true;
      for (const ExprPtr& c : constraints) {
        if (c->Eval({{0, x}}) == 0) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    if (result.kind == SolveKind::kUnsat) {
      EXPECT_FALSE(brute_sat) << "solver claimed UNSAT but a solution exists";
    }
    if (result.kind == SolveKind::kSat) {
      EXPECT_TRUE(brute_sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverUnsatProperty, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace dice::sym
