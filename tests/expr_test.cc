// Tests for the symbolic expression DAG and the concolic value types.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sym/expr.h"
#include "src/sym/value.h"
#include "src/util/rng.h"

namespace dice::sym {
namespace {

TEST(ExprTest, ConstFolding) {
  auto e = Expr::Add(Expr::MakeConst(2, 32), Expr::MakeConst(3, 32));
  ASSERT_TRUE(e->IsConst());
  EXPECT_EQ(e->imm(), 5u);

  e = Expr::Mul(Expr::MakeConst(6, 32), Expr::MakeConst(7, 32));
  EXPECT_EQ(e->imm(), 42u);

  e = Expr::ULt(Expr::MakeConst(1, 32), Expr::MakeConst(2, 32));
  ASSERT_TRUE(e->IsConst());
  EXPECT_EQ(e->imm(), 1u);
  EXPECT_TRUE(e->IsBool());
}

TEST(ExprTest, MaskingToWidth) {
  auto e = Expr::Add(Expr::MakeConst(0xff, 8), Expr::MakeConst(1, 8));
  EXPECT_EQ(e->imm(), 0u) << "8-bit wraparound";
  EXPECT_EQ(Expr::MakeConst(0x1ff, 8)->imm(), 0xffu);
}

TEST(ExprTest, VarEval) {
  auto v = Expr::MakeVar(3, 32);
  Assignment a{{3, 41}};
  EXPECT_EQ(v->Eval(a), 41u);
  EXPECT_EQ(v->Eval({}), 0u) << "unassigned vars evaluate to 0";
}

TEST(ExprTest, EvalCompound) {
  // (x + 2) * 3 == 15  with x = 3
  auto x = Expr::MakeVar(0, 32);
  auto e = Expr::Eq(Expr::Mul(Expr::Add(x, Expr::MakeConst(2, 32)), Expr::MakeConst(3, 32)),
                    Expr::MakeConst(15, 32));
  EXPECT_EQ(e->Eval({{0, 3}}), 1u);
  EXPECT_EQ(e->Eval({{0, 4}}), 0u);
}

TEST(ExprTest, LAndLOrShortCircuitFolding) {
  auto x = Expr::MakeVar(0, 1);
  EXPECT_TRUE(Expr::Identical(Expr::LAnd(Expr::MakeConst(1, 1), x), x));
  EXPECT_EQ(Expr::LAnd(Expr::MakeConst(0, 1), x)->imm(), 0u);
  EXPECT_TRUE(Expr::Identical(Expr::LOr(Expr::MakeConst(0, 1), x), x));
  EXPECT_EQ(Expr::LOr(Expr::MakeConst(1, 1), x)->imm(), 1u);
}

TEST(ExprTest, NegateFlipsComparisons) {
  auto x = Expr::MakeVar(0, 32);
  auto c = Expr::MakeConst(5, 32);
  EXPECT_EQ(Expr::Negate(Expr::ULt(x, c))->op(), Op::kUGe);
  EXPECT_EQ(Expr::Negate(Expr::Eq(x, c))->op(), Op::kNe);
  EXPECT_EQ(Expr::Negate(Expr::UGe(x, c))->op(), Op::kULt);
  // Double negation via LNot collapses.
  EXPECT_TRUE(Expr::Identical(Expr::Negate(Expr::LNot(x)), x));
}

TEST(ExprTest, NegateDeMorgan) {
  auto a = Expr::ULt(Expr::MakeVar(0, 32), Expr::MakeConst(5, 32));
  auto b = Expr::UGt(Expr::MakeVar(1, 32), Expr::MakeConst(9, 32));
  auto neg = Expr::Negate(Expr::LAnd(a, b));
  EXPECT_EQ(neg->op(), Op::kLOr);
  EXPECT_EQ(neg->lhs()->op(), Op::kUGe);
  EXPECT_EQ(neg->rhs()->op(), Op::kULe);
}

// Property: Negate(e) always evaluates to the logical complement.
class NegateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NegateProperty, ComplementUnderRandomAssignments) {
  Rng rng(GetParam());
  // Random boolean expression over 3 variables.
  std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
    auto var = [&] { return Expr::MakeVar(static_cast<VarId>(rng.NextBelow(3)), 16); };
    auto num = [&] { return Expr::MakeConst(rng.NextBelow(20), 16); };
    auto arith = [&]() -> ExprPtr {
      switch (rng.NextBelow(3)) {
        case 0: return var();
        case 1: return Expr::Add(var(), num());
        default: return Expr::Sub(var(), num());
      }
    };
    auto cmp = [&]() -> ExprPtr {
      switch (rng.NextBelow(6)) {
        case 0: return Expr::Eq(arith(), num());
        case 1: return Expr::Ne(arith(), num());
        case 2: return Expr::ULt(arith(), num());
        case 3: return Expr::ULe(arith(), num());
        case 4: return Expr::UGt(arith(), num());
        default: return Expr::UGe(arith(), num());
      }
    };
    if (depth == 0) {
      return cmp();
    }
    switch (rng.NextBelow(4)) {
      case 0: return Expr::LAnd(gen(depth - 1), gen(depth - 1));
      case 1: return Expr::LOr(gen(depth - 1), gen(depth - 1));
      case 2: return Expr::LNot(gen(depth - 1));
      default: return cmp();
    }
  };

  for (int iter = 0; iter < 200; ++iter) {
    ExprPtr e = gen(3);
    ExprPtr neg = Expr::Negate(e);
    for (int trial = 0; trial < 10; ++trial) {
      Assignment a{{0, rng.NextBelow(25)}, {1, rng.NextBelow(25)}, {2, rng.NextBelow(25)}};
      EXPECT_NE(e->Eval(a) != 0, neg->Eval(a) != 0)
          << e->ToString() << " vs " << neg->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegateProperty, ::testing::Values(1, 2, 3));

// --- Hash-consing ------------------------------------------------------------

TEST(ExprInternTest, StructuralEqualityImpliesPointerEquality) {
  auto build = [] {
    return Expr::Eq(Expr::Add(Expr::MakeVar(0, 32), Expr::MakeConst(7, 32)),
                    Expr::MakeConst(15, 32));
  };
  ExprPtr a = build();
  ExprPtr b = build();
  EXPECT_EQ(a.get(), b.get()) << "structurally equal expressions must intern to one node";
  EXPECT_TRUE(Expr::Identical(a, b));
  // Shared subtrees are shared nodes too.
  EXPECT_EQ(a->lhs().get(), b->lhs().get());
  // Distinct structure stays distinct.
  ExprPtr c = Expr::Eq(Expr::Add(Expr::MakeVar(0, 32), Expr::MakeConst(8, 32)),
                       Expr::MakeConst(15, 32));
  EXPECT_NE(a.get(), c.get());
  // Width participates in identity: an 8-bit 7 is not a 32-bit 7.
  EXPECT_NE(Expr::MakeConst(7, 8).get(), Expr::MakeConst(7, 32).get());
}

TEST(ExprInternTest, HashAndIdStability) {
  ExprPtr a = Expr::ULt(Expr::MakeVar(3, 16), Expr::MakeConst(42, 16));
  uint64_t id = a->id();
  uint64_t hash = a->hash();
  EXPECT_NE(id, 0u);
  // Rebuilding the same expression yields the same node, id, and hash.
  ExprPtr b = Expr::ULt(Expr::MakeVar(3, 16), Expr::MakeConst(42, 16));
  EXPECT_EQ(b->id(), id);
  EXPECT_EQ(b->hash(), hash);
  // Different expressions get different ids (ids are never reused).
  ExprPtr c = Expr::ULt(Expr::MakeVar(3, 16), Expr::MakeConst(43, 16));
  EXPECT_NE(c->id(), id);
}

TEST(ExprInternTest, DeadNodesLeaveTheTable) {
  size_t before = Expr::InternTableSize();
  {
    ExprPtr tmp = Expr::Mul(Expr::MakeVar(900001, 32), Expr::MakeConst(12345, 32));
    EXPECT_GT(Expr::InternTableSize(), before);
  }
  EXPECT_EQ(Expr::InternTableSize(), before) << "released nodes must be evicted";
  // Re-creating after death re-interns under a fresh id.
  ExprPtr again = Expr::Mul(Expr::MakeVar(900001, 32), Expr::MakeConst(12345, 32));
  EXPECT_GT(Expr::InternTableSize(), before);
  (void)again;
}

TEST(ExprInternTest, SortedVariableSupport) {
  auto e = Expr::LAnd(Expr::Eq(Expr::MakeVar(7, 32), Expr::MakeConst(1, 32)),
                      Expr::ULt(Expr::MakeVar(2, 32), Expr::MakeVar(7, 32)));
  EXPECT_EQ(e->vars(), (std::vector<VarId>{2, 7})) << "sorted and deduplicated";
  EXPECT_TRUE(Expr::MakeConst(5, 32)->vars().empty());
}

TEST(ExprTest, CollectVars) {
  auto e = Expr::LAnd(Expr::Eq(Expr::MakeVar(2, 32), Expr::MakeConst(1, 32)),
                      Expr::ULt(Expr::MakeVar(7, 32), Expr::MakeVar(2, 32)));
  std::set<VarId> vars;
  e->CollectVars(vars);
  EXPECT_EQ(vars, (std::set<VarId>{2, 7}));
}

TEST(ExprTest, ToStringReadable) {
  auto e = Expr::Eq(Expr::Add(Expr::MakeVar(0, 32), Expr::MakeConst(1, 32)),
                    Expr::MakeConst(5, 32));
  EXPECT_EQ(e->ToString(), "((v0 + 1) == 5)");
}

// --- sym::Value / sym::Bool ----------------------------------------------------

TEST(ValueTest, ConcreteFastPathBuildsNoExpr) {
  Value a(3);
  Value b(4);
  Value c = a + b;
  EXPECT_EQ(c.concrete(), 7u);
  EXPECT_FALSE(c.symbolic());
  Bool t = a < b;
  EXPECT_TRUE(t.concrete());
  EXPECT_FALSE(t.symbolic());
}

TEST(ValueTest, SymbolicPropagates) {
  Value x(10, Expr::MakeVar(0, 32));
  Value c = x + Value(5);
  EXPECT_EQ(c.concrete(), 15u);
  ASSERT_TRUE(c.symbolic());
  EXPECT_EQ(c.expr()->Eval({{0, 10}}), 15u);

  Bool b = c < Value(100);
  EXPECT_TRUE(b.concrete());
  ASSERT_TRUE(b.symbolic());
  EXPECT_EQ(b.expr()->Eval({{0, 10}}), 1u);
  EXPECT_EQ(b.expr()->Eval({{0, 96}}), 0u);
}

TEST(ValueTest, BoolConnectives) {
  Bool concrete_true(true);
  Bool symbolic(false, Expr::Eq(Expr::MakeVar(0, 32), Expr::MakeConst(1, 32)));
  Bool both = concrete_true && symbolic;
  EXPECT_FALSE(both.concrete());
  EXPECT_TRUE(both.symbolic());
  Bool either = concrete_true || symbolic;
  EXPECT_TRUE(either.concrete());
  Bool negated = !symbolic;
  EXPECT_TRUE(negated.concrete());
  ASSERT_TRUE(negated.symbolic());
  EXPECT_EQ(negated.expr()->op(), Op::kNe);
}

TEST(ValueTest, BitwiseOps) {
  Value x(0b1100, Expr::MakeVar(0, 32));
  Value m = x & Value(0b1010);
  EXPECT_EQ(m.concrete(), 0b1000u);
  EXPECT_EQ((x | Value(1)).concrete(), 0b1101u);
  EXPECT_EQ((x ^ Value(0b1111)).concrete(), 0b0011u);
}

// --- Concurrent interning (the lock-striped table behind parallel solving) ---

TEST(ExprInternTest, ConcurrentInterningAgreesOnPointerIdentity) {
  // N threads interning the same overlapping value universe must converge on
  // one node per distinct value — no lost entries (a thread observing a
  // different pointer) and no duplicates (the table growing past the
  // distinct-value count). Width 29 keeps this universe disjoint from every
  // other test's nodes.
  constexpr size_t kThreads = 8;
  constexpr uint64_t kValues = 200;
  constexpr uint64_t kVars = 16;
  const size_t before = Expr::InternTableSize();
  std::vector<std::vector<ExprPtr>> built(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &built] {
        built[t].reserve(kValues);
        for (uint64_t v = 0; v < kValues; ++v) {
          ExprPtr var = Expr::MakeVar(static_cast<VarId>(v % kVars), 29);
          built[t].push_back(Expr::ULt(var, Expr::MakeConst(v, 29)));
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (size_t t = 1; t < kThreads; ++t) {
    ASSERT_EQ(built[t].size(), kValues);
    for (uint64_t v = 0; v < kValues; ++v) {
      EXPECT_EQ(built[0][v].get(), built[t][v].get())
          << "thread " << t << " value " << v << " must share the interned node";
    }
  }
  // Exactly kVars var nodes + kValues const nodes + kValues comparisons.
  EXPECT_EQ(Expr::InternTableSize(), before + kVars + 2 * kValues);
  built.clear();
  EXPECT_EQ(Expr::InternTableSize(), before) << "released nodes must be evicted";
}

TEST(ExprInternTest, ConcurrentChurnLeavesNoResidue) {
  // Threads repeatedly intern and immediately release overlapping nodes,
  // hammering the expired-entry/deleter race: a node can die on one thread
  // while another interns the same value. The table must end exactly where
  // it started. (Run under TSan in CI.)
  constexpr size_t kThreads = 8;
  const size_t before = Expr::InternTableSize();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < 400; ++i) {
        ExprPtr transient =
            Expr::Eq(Expr::MakeVar(static_cast<VarId>(i % 8), 27),
                     Expr::MakeConst(i % 32, 27));
        (void)transient;  // dropped immediately: exercises the deleter path
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(Expr::InternTableSize(), before);
}

}  // namespace
}  // namespace dice::sym
