// Robustness / failure-injection properties across the stack:
//  * the wire decoder must reject or parse — never crash — on arbitrary bytes;
//  * the symbolic decision-preference expression must agree with the concrete
//    RoutePreferred on random routes (the "instrumentation never changes
//    semantics" property at the decision-process level);
//  * routers survive hostile peers (garbage, oversized, flapping links).

#include <gtest/gtest.h>

#include "src/bgp/router.h"
#include "src/bgp/wire.h"
#include "src/dice/instrumented.h"
#include "src/dice/symbolic_ctx.h"
#include "src/util/rng.h"

namespace dice {
namespace {

using bgp::Prefix;

// --- decoder never crashes -----------------------------------------------------

class DecoderFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzProperty, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam());
  size_t ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    size_t len = rng.NextBelow(128);
    Bytes data(len);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    StatusOr<bgp::Message> decoded = bgp::Decode(data);  // must not crash/hang
    if (decoded.ok()) {
      ++ok;
    }
  }
  // Random bytes essentially never form a valid message (the 16-byte marker
  // alone is a 2^-128 event).
  EXPECT_EQ(ok, 0u);
}

TEST_P(DecoderFuzzProperty, MutatedValidMessagesNeverCrash) {
  Rng rng(GetParam() + 100);
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence({65000, 65001});
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  u.attrs.med = 5;
  u.attrs.communities = {bgp::MakeCommunity(65000, 7)};
  u.nlri.push_back(*Prefix::Parse("203.0.113.0/24"));
  Bytes base = bgp::EncodeUpdate(u);

  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = base;
    size_t mutations = 1 + rng.NextBelow(6);
    for (size_t m = 0; m < mutations; ++m) {
      mutated[rng.NextBelow(mutated.size())] = static_cast<uint8_t>(rng.NextBelow(256));
    }
    // Occasionally truncate or extend.
    if (rng.NextBool(0.2) && mutated.size() > 20) {
      mutated.resize(20 + rng.NextBelow(mutated.size() - 20));
    }
    StatusOr<bgp::Message> decoded = bgp::Decode(mutated);
    if (decoded.ok() && std::holds_alternative<bgp::UpdateMessage>(*decoded)) {
      // Round-trip any accepted mutant: re-encoding must also succeed.
      const auto& update = std::get<bgp::UpdateMessage>(*decoded);
      Bytes re = bgp::EncodeUpdate(update);
      EXPECT_GE(re.size(), bgp::kHeaderSize);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzProperty, ::testing::Values(1, 2, 3));

// --- symbolic vs concrete decision preference ----------------------------------

// The symbolic preference used in the instrumented path must agree with
// bgp::RoutePreferred whenever the inputs are concrete. We reconstruct the
// comparison through the instrumented import path: process a candidate route
// with nothing symbolic and check became_best against the RIB's own decision.
class DecisionParityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecisionParityProperty, InstrumentedDecisionMatchesRib) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // Incumbent route from peer 9.
    auto config = std::make_shared<bgp::RouterConfig>();
    config->local_as = 3;
    config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
    bgp::NeighborConfig customer;
    customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer.remote_as = 1;
    config->neighbors.push_back(customer);

    bgp::RouterState state;
    state.config = config;
    bgp::Route incumbent;
    incumbent.peer = 9;
    incumbent.peer_as = rng.NextBool(0.5) ? 1u : 9u;  // sometimes same AS as challenger
    std::vector<bgp::AsNumber> inc_path{incumbent.peer_as};
    size_t inc_len = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < inc_len; ++i) {
      inc_path.push_back(static_cast<bgp::AsNumber>(100 + rng.NextBelow(500)));
    }
    bgp::PathAttributes inc_attrs;
    inc_attrs.as_path = bgp::AsPath::Sequence(inc_path);
    inc_attrs.origin = static_cast<bgp::Origin>(rng.NextBelow(3));
    if (rng.NextBool(0.5)) {
      inc_attrs.med = static_cast<uint32_t>(rng.NextBelow(100));
    }
    if (rng.NextBool(0.3)) {
      inc_attrs.local_pref = static_cast<uint32_t>(50 + rng.NextBelow(300));
    }
    incumbent.attrs = std::move(inc_attrs);
    Prefix prefix = *Prefix::Parse("203.0.113.0/24");
    state.rib.AddRoute(prefix, incumbent);

    // Challenger from peer 1, processed through the instrumented path with
    // nothing marked symbolic.
    bgp::UpdateMessage challenge;
    std::vector<bgp::AsNumber> ch_path{1};
    size_t ch_len = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < ch_len; ++i) {
      ch_path.push_back(static_cast<bgp::AsNumber>(100 + rng.NextBelow(500)));
    }
    challenge.attrs.as_path = bgp::AsPath::Sequence(ch_path);
    challenge.attrs.origin = static_cast<bgp::Origin>(rng.NextBelow(3));
    if (rng.NextBool(0.5)) {
      challenge.attrs.med = static_cast<uint32_t>(rng.NextBelow(100));
    }
    challenge.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
    challenge.nlri.push_back(prefix);

    bgp::PeerView from;
    from.id = 1;
    from.remote_as = 1;
    from.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    from.established = true;

    SymbolicUpdateSpec spec;  // everything symbolic: parity must still hold
    sym::Engine engine;
    engine.BeginRun({});
    bgp::UpdateSink sink = [](bgp::PeerId, const bgp::UpdateMessage&) {};
    bgp::RouterState clone = state;
    ExplorationOutcome outcome =
        ExploreUpdateOnClone(engine, clone, {from}, from, challenge, spec, sink);

    ASSERT_TRUE(outcome.installed);
    const bgp::Route* best = clone.rib.BestRoute(prefix);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(outcome.became_best, best->peer == 1u)
        << "instrumented became_best must reflect the RIB decision";

    // And the decision itself must equal brute force over RoutePreferred.
    auto candidates = clone.rib.Candidates(prefix);
    const bgp::Route* expected = &candidates[0];
    for (const bgp::Route& r : candidates) {
      if (bgp::RoutePreferred(r, *expected)) {
        expected = &r;
      }
    }
    EXPECT_EQ(best->peer, expected->peer);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionParityProperty, ::testing::Values(7, 8, 9));

// --- hostile peer survival -----------------------------------------------------

TEST(RouterRobustnessTest, SurvivesGarbageStormAndKeepsRouting) {
  net::EventLoop loop;
  net::Network net(&loop);

  bgp::RouterConfig a_cfg;
  a_cfg.name = "a";
  a_cfg.local_as = 1;
  a_cfg.router_id = *bgp::Ipv4Address::Parse("10.0.0.1");
  a_cfg.networks.push_back(*Prefix::Parse("203.0.113.0/24"));
  bgp::NeighborConfig nb;
  nb.address = *bgp::Ipv4Address::Parse("10.0.0.2");
  nb.remote_as = 2;
  a_cfg.neighbors.push_back(nb);

  bgp::RouterConfig b_cfg;
  b_cfg.name = "b";
  b_cfg.local_as = 2;
  b_cfg.router_id = *bgp::Ipv4Address::Parse("10.0.0.2");
  bgp::NeighborConfig nb2;
  nb2.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  nb2.remote_as = 1;
  b_cfg.neighbors.push_back(nb2);

  bgp::Router a(1, std::move(a_cfg), &net);
  bgp::Router b(2, std::move(b_cfg), &net);
  net.AddNode(&a);
  net.AddNode(&b);
  a.RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.2"), 2);
  b.RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.1"), 1);
  a.Start();
  b.Start();
  net.Connect(1, 2, net::kMillisecond);
  loop.RunFor(5 * net::kSecond);
  ASSERT_TRUE(b.Established(1));

  // Storm of garbage from a's node id (as if a compromised peer).
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    size_t len = 1 + rng.NextBelow(64);
    Bytes junk(len);
    for (auto& byte : junk) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    net.Send(1, 2, junk);
  }
  loop.RunFor(net::kSecond);
  EXPECT_EQ(b.decode_errors(), 500u);
  EXPECT_TRUE(b.Established(1)) << "garbage must not tear the session down";
  EXPECT_NE(b.rib().BestRoute(*Prefix::Parse("203.0.113.0/24")), nullptr);
}

TEST(RouterRobustnessTest, SurvivesLinkFlapping) {
  net::EventLoop loop;
  net::Network net(&loop);

  bgp::RouterConfig a_cfg;
  a_cfg.name = "a";
  a_cfg.local_as = 1;
  a_cfg.router_id = *bgp::Ipv4Address::Parse("10.0.0.1");
  a_cfg.networks.push_back(*Prefix::Parse("203.0.113.0/24"));
  bgp::NeighborConfig nb;
  nb.address = *bgp::Ipv4Address::Parse("10.0.0.2");
  nb.remote_as = 2;
  a_cfg.neighbors.push_back(nb);

  bgp::RouterConfig b_cfg;
  b_cfg.name = "b";
  b_cfg.local_as = 2;
  b_cfg.router_id = *bgp::Ipv4Address::Parse("10.0.0.2");
  bgp::NeighborConfig nb2;
  nb2.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  nb2.remote_as = 1;
  b_cfg.neighbors.push_back(nb2);

  bgp::Router a(1, std::move(a_cfg), &net);
  bgp::Router b(2, std::move(b_cfg), &net);
  net.AddNode(&a);
  net.AddNode(&b);
  a.RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.2"), 2);
  b.RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.1"), 1);
  a.Start();
  b.Start();

  for (int flap = 0; flap < 5; ++flap) {
    net.Connect(1, 2, net::kMillisecond);
    loop.RunFor(5 * net::kSecond);
    EXPECT_TRUE(b.Established(1)) << "flap " << flap;
    EXPECT_NE(b.rib().BestRoute(*Prefix::Parse("203.0.113.0/24")), nullptr);
    net.Disconnect(1, 2);
    loop.RunFor(2 * net::kSecond);
    EXPECT_EQ(b.rib().BestRoute(*Prefix::Parse("203.0.113.0/24")), nullptr)
        << "routes flushed on flap " << flap;
  }
}

}  // namespace
}  // namespace dice
