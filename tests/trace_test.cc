// Tests for the trace generator, the text format, and the feed/replay path.

#include <gtest/gtest.h>

#include <set>

#include "src/bgp/router.h"
#include "src/trace/feed.h"
#include "src/trace/trace.h"

namespace dice::trace {
namespace {

TraceGeneratorOptions SmallOptions(uint64_t seed = 1) {
  TraceGeneratorOptions options;
  options.seed = seed;
  options.prefix_count = 500;
  options.as_count = 100;
  options.update_duration = 60 * net::kSecond;
  options.updates_per_second = 2.0;
  return options;
}

TEST(TraceGeneratorTest, TableHasRequestedSizeAndUniquePrefixes) {
  TraceGenerator gen(SmallOptions());
  EXPECT_EQ(gen.table().size(), 500u);
  std::set<bgp::Prefix> seen;
  for (const auto& route : gen.table()) {
    EXPECT_TRUE(seen.insert(route.prefix).second) << "duplicate " << route.prefix.ToString();
  }
}

TEST(TraceGeneratorTest, DeterministicForSameSeed) {
  TraceGenerator a(SmallOptions(7));
  TraceGenerator b(SmallOptions(7));
  ASSERT_EQ(a.table().size(), b.table().size());
  for (size_t i = 0; i < a.table().size(); ++i) {
    EXPECT_EQ(a.table()[i].prefix, b.table()[i].prefix);
    EXPECT_EQ(a.table()[i].attrs, b.table()[i].attrs);
  }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  TraceGenerator a(SmallOptions(1));
  TraceGenerator b(SmallOptions(2));
  size_t same = 0;
  for (size_t i = 0; i < a.table().size(); ++i) {
    if (a.table()[i].prefix == b.table()[i].prefix) {
      ++same;
    }
  }
  EXPECT_LT(same, 50u);
}

TEST(TraceGeneratorTest, PathsStartAtFeedAsAndAreLoopFree) {
  TraceGenerator gen(SmallOptions());
  for (const auto& route : gen.table()) {
    auto flat = route.attrs.as_path.Flatten();
    ASSERT_GE(flat.size(), 2u);
    EXPECT_EQ(flat.front(), gen.table().front().attrs.as_path.FirstAs());
    std::set<bgp::AsNumber> unique(flat.begin(), flat.end());
    EXPECT_EQ(unique.size(), flat.size()) << "AS path must be loop-free";
  }
}

TEST(TraceGeneratorTest, PrefixMixIsRealistic) {
  TraceGeneratorOptions options = SmallOptions();
  options.prefix_count = 5000;
  TraceGenerator gen(options);
  size_t len24 = 0;
  for (const auto& route : gen.table()) {
    EXPECT_GE(route.prefix.length(), 8);
    EXPECT_LE(route.prefix.length(), 24);
    if (route.prefix.length() == 24) {
      ++len24;
    }
    // No martians in the generated space.
    EXPECT_FALSE(bgp::IsMartian(route.prefix));
  }
  // /24 should dominate (~55%).
  EXPECT_GT(len24, gen.table().size() * 2 / 5);
}

TEST(TraceGeneratorTest, FullDumpCoversWholeTable) {
  TraceGenerator gen(SmallOptions());
  Trace dump = gen.FullDump();
  EXPECT_EQ(dump.TotalAnnouncedPrefixes(), 500u);
  for (const TraceEvent& ev : dump.events) {
    EXPECT_EQ(ev.at, 0u);
    EXPECT_FALSE(ev.update.nlri.empty());
    EXPECT_TRUE(ev.update.withdrawn.empty());
  }
}

TEST(TraceGeneratorTest, UpdateTraceRespectsDurationAndRate) {
  TraceGenerator gen(SmallOptions());
  Trace updates = gen.UpdateTrace();
  EXPECT_LE(updates.Duration(), 60 * net::kSecond);
  // ~2/s over 60 s => ~120 events; accept a generous band.
  EXPECT_GT(updates.events.size(), 60u);
  EXPECT_LT(updates.events.size(), 240u);
  // Events are time-ordered.
  for (size_t i = 1; i < updates.events.size(); ++i) {
    EXPECT_GE(updates.events[i].at, updates.events[i - 1].at);
  }
  // Mix contains withdraws.
  EXPECT_GT(updates.TotalWithdrawnPrefixes(), 0u);
}

TEST(TraceTextTest, SerializeParseRoundTrip) {
  TraceGenerator gen(SmallOptions());
  Trace updates = gen.UpdateTrace();
  std::string text = SerializeTrace(updates);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), updates.events.size());
  for (size_t i = 0; i < updates.events.size(); ++i) {
    const TraceEvent& a = updates.events[i];
    const TraceEvent& b = parsed->events[i];
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.update.nlri, b.update.nlri);
    EXPECT_EQ(a.update.withdrawn, b.update.withdrawn);
    EXPECT_EQ(a.update.attrs.as_path, b.update.attrs.as_path);
    EXPECT_EQ(a.update.attrs.origin, b.update.attrs.origin);
  }
}

// Regression: SerializeTrace used to drop med/local_pref (and every other
// optional attribute) — a round-trip silently lost routing-relevant state.
TEST(TraceTextTest, OptionalAttributesSurviveRoundTrip) {
  Trace trace;
  TraceEvent ev;
  ev.at = 42;
  ev.update.attrs.as_path = bgp::AsPath::Sequence({65000, 7});
  ev.update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
  ev.update.attrs.origin = bgp::Origin::kIgp;
  ev.update.attrs.med = 50;
  ev.update.attrs.local_pref = 200;
  ev.update.attrs.atomic_aggregate = true;
  ev.update.attrs.aggregator = bgp::Aggregator{7, *bgp::Ipv4Address::Parse("192.0.2.1")};
  ev.update.attrs.communities = {(65000u << 16) | 666u, (65000u << 16) | 1u};
  ev.update.nlri.push_back(*bgp::Prefix::Parse("203.0.113.0/24"));
  trace.events.push_back(ev);

  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0], ev);
}

// Regression: AsPath::ToString emits "{a,b}" for AS_SET but the parser only
// accepted plain ASNs, so any aggregated route failed to reparse.
TEST(TraceTextTest, AsSetSurvivesRoundTrip) {
  Trace trace;
  TraceEvent ev;
  ev.at = 1;
  ev.update.attrs.as_path =
      bgp::AsPath({{bgp::AsSegmentType::kAsSequence, {65000, 9}},
                   {bgp::AsSegmentType::kAsSet, {11, 12, 13}}});
  ev.update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
  ev.update.attrs.origin = bgp::Origin::kIncomplete;
  ev.update.nlri.push_back(*bgp::Prefix::Parse("198.51.100.0/24"));
  trace.events.push_back(ev);

  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0], ev);
}

TEST(TraceTextTest, ParseRejectsMalformedAsSet) {
  // Unterminated set, empty set, junk inside a set.
  EXPECT_FALSE(ParseTrace("A|1|65000 {1,2|10.0.0.1|i|10.0.0.0/8").ok());
  EXPECT_FALSE(ParseTrace("A|1|65000 {}|10.0.0.1|i|10.0.0.0/8").ok());
  EXPECT_FALSE(ParseTrace("A|1|65000 {1,x}|10.0.0.1|i|10.0.0.0/8").ok());
}

// Regression: an event carrying both withdrawn routes and NLRI serialized as
// a W line plus an A line, so one UPDATE reparsed as two events.
TEST(TraceTextTest, CombinedWithdrawAndAnnounceStaysOneEvent) {
  Trace trace;
  TraceEvent ev;
  ev.at = 9;
  ev.update.attrs.as_path = bgp::AsPath::Sequence({65000, 4});
  ev.update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
  ev.update.attrs.origin = bgp::Origin::kEgp;
  ev.update.withdrawn.push_back(*bgp::Prefix::Parse("192.0.2.0/24"));
  ev.update.nlri.push_back(*bgp::Prefix::Parse("198.51.100.0/24"));
  trace.events.push_back(ev);

  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 1u) << "one UPDATE must stay one event";
  EXPECT_EQ(parsed->events[0], ev);
}

// Full-fidelity guarantee on generated corpora: with every attribute now
// serialized, text round-trips are exact TraceEvent equality, not a
// spot-check of a few fields.
TEST(TraceTextTest, GeneratedCorpusRoundTripsExactly) {
  TraceGenerator gen(SmallOptions(5));
  Trace trace = gen.FullDump();
  Trace updates = gen.UpdateTrace();
  trace.events.insert(trace.events.end(), updates.events.begin(), updates.events.end());
  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i], trace.events[i]) << "event " << i;
  }
}

// Regression: MakeAttrs retried forever when as_count was too small to fill
// max_path_len distinct hops — as_count=1 hung the generator.
TEST(TraceGeneratorTest, TinyAsCountTerminates) {
  TraceGeneratorOptions options = SmallOptions();
  options.prefix_count = 50;
  options.as_count = 1;
  options.max_path_len = 6;
  TraceGenerator gen(options);  // must not hang
  ASSERT_EQ(gen.table().size(), 50u);
  for (const auto& route : gen.table()) {
    auto flat = route.attrs.as_path.Flatten();
    EXPECT_EQ(flat.size(), 2u) << "one AS can only yield feed_as + origin";
  }
}

// Regression: "no martians" only excluded 127/8; RFC1918 and link-local
// space leaked into generated tables.
TEST(TraceGeneratorTest, GeneratedPrefixesAvoidReservedSpace) {
  TraceGeneratorOptions options = SmallOptions(11);
  options.prefix_count = 5000;
  TraceGenerator gen(options);
  const bgp::Prefix reserved[] = {
      *bgp::Prefix::Parse("10.0.0.0/8"),     *bgp::Prefix::Parse("127.0.0.0/8"),
      *bgp::Prefix::Parse("169.254.0.0/16"), *bgp::Prefix::Parse("172.16.0.0/12"),
      *bgp::Prefix::Parse("192.168.0.0/16"),
  };
  for (const auto& route : gen.table()) {
    for (const bgp::Prefix& block : reserved) {
      EXPECT_FALSE(block.Covers(route.prefix))
          << route.prefix.ToString() << " lies in reserved " << block.ToString();
    }
  }
}

TEST(TraceTextTest, ParseSkipsCommentsAndBlankLines) {
  auto parsed = ParseTrace("# comment\n\nA|100|65000 65001|10.0.0.1|i|10.0.0.0/8\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].at, 100u);
  EXPECT_EQ(parsed->events[0].update.nlri[0].ToString(), "10.0.0.0/8");
}

TEST(TraceTextTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseTrace("X|1|10.0.0.0/8").ok());
  EXPECT_FALSE(ParseTrace("A|notatime|65000|10.0.0.1|i|10.0.0.0/8").ok());
  EXPECT_FALSE(ParseTrace("A|1|65000|10.0.0.1|z|10.0.0.0/8").ok());
  EXPECT_FALSE(ParseTrace("A|1|65000|10.0.0.1|i|10.0.0.0/99").ok());
  EXPECT_FALSE(ParseTrace("W|1|bogus").ok());
  EXPECT_FALSE(ParseTrace("A|1|x|10.0.0.1|i|10.0.0.0/8").ok());
}

// --- feed + replay into a real router -------------------------------------------

class FeedTest : public ::testing::Test {
 protected:
  FeedTest() : net_(&loop_), feed_(1, "feed", 65000, *bgp::Ipv4Address::Parse("10.0.0.9"), &net_) {
    bgp::RouterConfig config;
    config.name = "router";
    config.local_as = 3;
    config.router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
    bgp::NeighborConfig nc;
    nc.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    nc.remote_as = 65000;
    config.neighbors.push_back(nc);
    router_ = std::make_unique<bgp::Router>(2, std::move(config), &net_);

    net_.AddNode(&feed_);
    net_.AddNode(router_.get());
    router_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.9"), 1);
    feed_.SetPeer(2);
    router_->Start();
    net_.Connect(1, 2, net::kMillisecond);
    loop_.RunFor(net::kSecond);
  }

  net::EventLoop loop_;
  net::Network net_;
  BgpFeedNode feed_;
  std::unique_ptr<bgp::Router> router_;
};

TEST_F(FeedTest, HandshakeEstablishesBothSides) {
  EXPECT_TRUE(feed_.established());
  EXPECT_TRUE(router_->Established(1));
}

TEST_F(FeedTest, ReplayLoadsTableIntoRouter) {
  TraceGenerator gen(SmallOptions());
  Trace dump = gen.FullDump();
  ScheduleTrace(&loop_, &feed_, dump, loop_.now());
  loop_.RunFor(10 * net::kSecond);
  EXPECT_EQ(router_->rib().PrefixCount(), 500u);
  EXPECT_EQ(feed_.updates_sent(), dump.events.size());
}

TEST_F(FeedTest, ReplayedUpdatesCarryFeedPath) {
  TraceGenerator gen(SmallOptions());
  ScheduleTrace(&loop_, &feed_, gen.FullDump(), loop_.now());
  loop_.RunFor(10 * net::kSecond);
  const auto& route = gen.table()[0];
  const bgp::Route* best = router_->rib().BestRoute(route.prefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->attrs->as_path, route.attrs.as_path);
}

TEST_F(FeedTest, WithdrawReplayRemovesRoutes) {
  TraceGenerator gen(SmallOptions());
  ScheduleTrace(&loop_, &feed_, gen.FullDump(), loop_.now());
  loop_.RunFor(5 * net::kSecond);
  ASSERT_EQ(router_->rib().PrefixCount(), 500u);

  Trace withdraw_all;
  for (const auto& route : gen.table()) {
    TraceEvent ev;
    ev.at = 0;
    ev.update.withdrawn.push_back(route.prefix);
    withdraw_all.events.push_back(ev);
  }
  ScheduleTrace(&loop_, &feed_, withdraw_all, loop_.now());
  loop_.RunFor(5 * net::kSecond);
  EXPECT_EQ(router_->rib().PrefixCount(), 0u);
}

TEST_F(FeedTest, SessionSurvivesQuietStretch) {
  // 10 simulated minutes with no updates: keepalive echo must keep both
  // sides alive.
  loop_.RunFor(10 * 60 * net::kSecond);
  EXPECT_TRUE(router_->Established(1));
  EXPECT_TRUE(feed_.established());
}

}  // namespace
}  // namespace dice::trace
