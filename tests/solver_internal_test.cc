// White-box tests of solver internals: interval propagation and the helper
// arithmetic, complementing the black-box SAT/UNSAT suite in solver_test.cc.

#include <gtest/gtest.h>

#include "src/sym/solver.h"

namespace dice::sym {
namespace {

using solver_internal::Interval;
using solver_internal::LinCmp;
using solver_internal::LinearAtom;
using solver_internal::LinearTerm;
using solver_internal::PropagateIntervals;

std::vector<VarInfo> TwoVars() {
  std::vector<VarInfo> vars(2);
  vars[0] = VarInfo{0, "x", 32, 0, 0, 1000};
  vars[1] = VarInfo{1, "y", 32, 0, 0, 1000};
  return vars;
}

std::vector<Interval> Domains(std::initializer_list<std::pair<uint64_t, uint64_t>> ds) {
  std::vector<Interval> out;
  for (auto [lo, hi] : ds) {
    out.push_back(Interval{lo, hi});
  }
  return out;
}

TEST(PropagateIntervalsTest, SingleVarLe) {
  LinearAtom atom;
  atom.terms = {LinearTerm{0, 1}};
  atom.cmp = LinCmp::kLe;
  atom.rhs = 42;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({atom}, domains, TwoVars()));
  EXPECT_EQ(domains[0].hi, 42u);
  EXPECT_EQ(domains[0].lo, 0u);
  EXPECT_EQ(domains[1].hi, 1000u) << "unrelated variable untouched";
}

TEST(PropagateIntervalsTest, SingleVarGeWithCoefficient) {
  // 3x >= 10  =>  x >= 4 (ceil)
  LinearAtom atom;
  atom.terms = {LinearTerm{0, 3}};
  atom.cmp = LinCmp::kGe;
  atom.rhs = 10;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({atom}, domains, TwoVars()));
  EXPECT_EQ(domains[0].lo, 4u);
}

TEST(PropagateIntervalsTest, NegativeCoefficientFlips) {
  // -x <= -5  =>  x >= 5
  LinearAtom atom;
  atom.terms = {LinearTerm{0, -1}};
  atom.cmp = LinCmp::kLe;
  atom.rhs = -5;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({atom}, domains, TwoVars()));
  EXPECT_EQ(domains[0].lo, 5u);
}

TEST(PropagateIntervalsTest, EqualityPinsPoint) {
  LinearAtom atom;
  atom.terms = {LinearTerm{0, 2}};
  atom.cmp = LinCmp::kEq;
  atom.rhs = 14;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({atom}, domains, TwoVars()));
  EXPECT_EQ(domains[0].lo, 7u);
  EXPECT_EQ(domains[0].hi, 7u);
}

TEST(PropagateIntervalsTest, DetectsEmptyDomain) {
  LinearAtom ge;
  ge.terms = {LinearTerm{0, 1}};
  ge.cmp = LinCmp::kGe;
  ge.rhs = 100;
  LinearAtom le;
  le.terms = {LinearTerm{0, 1}};
  le.cmp = LinCmp::kLe;
  le.rhs = 50;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  EXPECT_FALSE(PropagateIntervals({ge, le}, domains, TwoVars()));
}

TEST(PropagateIntervalsTest, CrossVariableTightening) {
  // x + y <= 10 with y >= 8  =>  x <= 2
  LinearAtom sum;
  sum.terms = {LinearTerm{0, 1}, LinearTerm{1, 1}};
  sum.cmp = LinCmp::kLe;
  sum.rhs = 10;
  LinearAtom y_ge;
  y_ge.terms = {LinearTerm{1, 1}};
  y_ge.cmp = LinCmp::kGe;
  y_ge.rhs = 8;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({sum, y_ge}, domains, TwoVars()));
  EXPECT_EQ(domains[0].hi, 2u);
  EXPECT_EQ(domains[1].lo, 8u);
  EXPECT_LE(domains[1].hi, 10u);
}

TEST(PropagateIntervalsTest, DifferenceConstraintChain) {
  // x - y >= 3 and x <= 5  =>  y <= 2
  LinearAtom diff;
  diff.terms = {LinearTerm{0, 1}, LinearTerm{1, -1}};
  diff.cmp = LinCmp::kGe;
  diff.rhs = 3;
  LinearAtom x_le;
  x_le.terms = {LinearTerm{0, 1}};
  x_le.cmp = LinCmp::kLe;
  x_le.rhs = 5;
  auto domains = Domains({{0, 1000}, {0, 1000}});
  ASSERT_TRUE(PropagateIntervals({diff, x_le}, domains, TwoVars()));
  EXPECT_EQ(domains[1].hi, 2u);
  EXPECT_GE(domains[0].lo, 3u);
}

TEST(PropagateIntervalsTest, NeDoesNotTighten) {
  LinearAtom atom;
  atom.terms = {LinearTerm{0, 1}};
  atom.cmp = LinCmp::kNe;
  atom.rhs = 5;
  auto domains = Domains({{0, 10}, {0, 10}});
  ASSERT_TRUE(PropagateIntervals({atom}, domains, TwoVars()));
  EXPECT_EQ(domains[0].lo, 0u);
  EXPECT_EQ(domains[0].hi, 10u);
}

// --- Constraint-independence slicing -----------------------------------------

using solver_internal::SliceConstraints;
using solver_internal::SliceResult;

ExprPtr V(VarId id, uint8_t bits = 32) { return Expr::MakeVar(id, bits); }
ExprPtr C(uint64_t v, uint8_t bits = 32) { return Expr::MakeConst(v, bits); }

TEST(SliceConstraintsTest, DropsSatisfiedIndependentComponents) {
  // Components: {v0}, {v1}, {v2, v3} (linked by a shared atom). Base satisfies
  // the v1 and v2/v3 components but violates the v0 constraint.
  std::vector<ExprPtr> constraints = {
      Expr::Eq(V(0), C(5)),                       // violated (base v0 = 1)
      Expr::ULt(V(1), C(10)),                     // satisfied
      Expr::UGe(Expr::Add(V(2), V(3)), C(3)),     // satisfied
      Expr::ULe(V(3), C(9)),                      // satisfied, same component
  };
  std::vector<uint64_t> base = {1, 2, 2, 2};
  SliceResult slice = SliceConstraints(constraints, base);
  EXPECT_FALSE(slice.trivially_unsat);
  ASSERT_EQ(slice.active.size(), 1u);
  EXPECT_TRUE(Expr::Identical(slice.active[0], constraints[0]));
  EXPECT_EQ(slice.sliced_away, 3u);
}

TEST(SliceConstraintsTest, KeepsWholeComponentOfViolatedConstraint) {
  // v0 and v1 are linked through the sum atom; violating the v1 bound must
  // keep the sum atom too, even though the base satisfies it.
  std::vector<ExprPtr> constraints = {
      Expr::ULe(Expr::Add(V(0), V(1)), C(10)),  // satisfied, shares v1
      Expr::UGe(V(1), C(9)),                    // violated (base v1 = 2)
      Expr::ULt(V(2), C(100)),                  // satisfied, independent
  };
  std::vector<uint64_t> base = {1, 2, 3};
  SliceResult slice = SliceConstraints(constraints, base);
  ASSERT_EQ(slice.active.size(), 2u);
  EXPECT_EQ(slice.sliced_away, 1u);
}

TEST(SliceConstraintsTest, ConstantFalseIsTriviallyUnsat) {
  std::vector<ExprPtr> constraints = {Expr::ULt(V(0), C(10)), C(0, 1)};
  std::vector<uint64_t> base = {50};
  SliceResult slice = SliceConstraints(constraints, base);
  EXPECT_TRUE(slice.trivially_unsat);
}

TEST(SliceConstraintsTest, AllSatisfiedSlicesEverything) {
  std::vector<ExprPtr> constraints = {Expr::ULt(V(0), C(10)), Expr::UGt(V(1), C(1))};
  std::vector<uint64_t> base = {5, 7};
  SliceResult slice = SliceConstraints(constraints, base);
  EXPECT_TRUE(slice.active.empty());
  EXPECT_EQ(slice.sliced_away, 2u);
}

// --- Cross-run query cache ----------------------------------------------------

std::vector<VarInfo> CacheVars() {
  std::vector<VarInfo> vars(2);
  vars[0] = VarInfo{0, "x", 32, 0, 0, 1000};
  vars[1] = VarInfo{1, "y", 32, 0, 0, 1000};
  return vars;
}

TEST(SolverCacheTest, ExactHitServesRepeatedQuery) {
  Solver solver;
  auto vars = CacheVars();
  Assignment hint{{0, 1}, {1, 1}};
  std::vector<ExprPtr> query = {Expr::Eq(V(0), C(500))};
  auto first = solver.Solve(query, vars, hint);
  ASSERT_EQ(first.kind, SolveKind::kSat);
  EXPECT_EQ(solver.stats().cache_hits, 0u);
  EXPECT_EQ(solver.stats().cache_misses, 1u);
  auto second = solver.Solve(query, vars, hint);
  ASSERT_EQ(second.kind, SolveKind::kSat);
  EXPECT_EQ(second.model.at(0), first.model.at(0));
  EXPECT_EQ(solver.stats().cache_hits, 1u);
  EXPECT_EQ(solver.stats().cache_misses, 1u);
}

TEST(SolverCacheTest, UnsatSupersetShortcut) {
  Solver solver;
  auto vars = CacheVars();
  Assignment hint{{0, 1}, {1, 1}};
  // x >= 100 && x <= 50 is interval-refuted.
  ExprPtr ge = Expr::UGe(V(0), C(100));
  ExprPtr le = Expr::ULe(V(0), C(50));
  auto first = solver.Solve({ge, le}, vars, hint);
  ASSERT_EQ(first.kind, SolveKind::kUnsat);
  // A strict superset (extra y constraint the hint violates, so it is not
  // sliced away) must be served by the UNSAT-superset rule without a solve.
  uint64_t misses_before = solver.stats().cache_misses;
  auto superset = solver.Solve({ge, le, Expr::UGe(V(1), C(7))}, vars, hint);
  EXPECT_EQ(superset.kind, SolveKind::kUnsat);
  EXPECT_GT(solver.stats().cache_unsat_shortcuts, 0u);
  EXPECT_EQ(solver.stats().cache_misses, misses_before);
}

TEST(SolverCacheTest, SatModelReuse) {
  SolverOptions options;
  options.enable_model_reuse = true;  // opt-in: trades reproducibility for speed
  Solver solver(options);
  auto vars = CacheVars();
  Assignment hint{{0, 1}, {1, 1}};
  // First query pins x = 700.
  auto first = solver.Solve({Expr::Eq(V(0), C(700))}, vars, hint);
  ASSERT_EQ(first.kind, SolveKind::kSat);
  // A *different* query satisfied by the cached model (x = 700 >= 600) is
  // answered by model reuse, not a fresh search.
  uint64_t misses_before = solver.stats().cache_misses;
  auto second = solver.Solve({Expr::UGe(V(0), C(600))}, vars, hint);
  ASSERT_EQ(second.kind, SolveKind::kSat);
  EXPECT_EQ(second.model.at(0), 700u);
  EXPECT_GT(solver.stats().cache_model_reuses, 0u);
  EXPECT_EQ(solver.stats().cache_misses, misses_before);
}

TEST(SolverCacheTest, DisabledCacheNeverCounts) {
  SolverOptions options;
  options.enable_cache = false;
  Solver solver(options);
  auto vars = CacheVars();
  Assignment hint{{0, 1}, {1, 1}};
  std::vector<ExprPtr> query = {Expr::Eq(V(0), C(500))};
  solver.Solve(query, vars, hint);
  solver.Solve(query, vars, hint);
  EXPECT_EQ(solver.stats().cache_hits, 0u);
  EXPECT_EQ(solver.stats().cache_misses, 0u);
}

TEST(SolverSlicingTest, SlicedVarsKeepHintValues) {
  SolverOptions options;
  Solver solver(options);
  auto vars = CacheVars();
  // Hint satisfies the y constraint; only x needs solving, and y must carry
  // the hint value into the model untouched.
  Assignment hint{{0, 1}, {1, 321}};
  auto result = solver.Solve({Expr::Eq(V(0), C(77)), Expr::UGe(V(1), C(300))}, vars, hint);
  ASSERT_EQ(result.kind, SolveKind::kSat);
  EXPECT_EQ(result.model.at(0), 77u);
  EXPECT_EQ(result.model.at(1), 321u);
  EXPECT_GT(solver.stats().atoms_sliced, 0u);
}

// Property: propagation is sound — it never removes an actual solution.
class PropagationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationSoundness, NeverRemovesSolutions) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    // Small random system over x,y in [0,30].
    std::vector<LinearAtom> atoms;
    size_t n = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      LinearAtom atom;
      atom.terms.push_back(LinearTerm{0, static_cast<int64_t>(rng.NextInRange(-3, 3))});
      if (rng.NextBool(0.6)) {
        atom.terms.push_back(LinearTerm{1, static_cast<int64_t>(rng.NextInRange(-3, 3))});
      }
      // Drop zero-coefficient terms (Linearize never produces them).
      std::vector<LinearTerm> cleaned;
      for (const LinearTerm& t : atom.terms) {
        if (t.coef != 0) {
          cleaned.push_back(t);
        }
      }
      if (cleaned.empty()) {
        continue;
      }
      atom.terms = cleaned;
      atom.cmp = rng.NextBool(0.5) ? LinCmp::kLe : LinCmp::kGe;
      atom.rhs = rng.NextInRange(-40, 80);
      atoms.push_back(atom);
    }

    std::vector<VarInfo> vars(2);
    vars[0] = VarInfo{0, "x", 32, 0, 0, 30};
    vars[1] = VarInfo{1, "y", 32, 0, 0, 30};
    auto domains = Domains({{0, 30}, {0, 30}});
    bool feasible_after = PropagateIntervals(atoms, domains, vars);

    // Brute force all (x, y).
    for (uint64_t x = 0; x <= 30; ++x) {
      for (uint64_t y = 0; y <= 30; ++y) {
        bool sat = true;
        for (const LinearAtom& atom : atoms) {
          int64_t sum = 0;
          for (const LinearTerm& t : atom.terms) {
            sum += t.coef * static_cast<int64_t>(t.var == 0 ? x : y);
          }
          bool ok = atom.cmp == LinCmp::kLe ? sum <= atom.rhs : sum >= atom.rhs;
          if (!ok) {
            sat = false;
            break;
          }
        }
        if (sat) {
          ASSERT_TRUE(feasible_after) << "propagation refuted a satisfiable system";
          EXPECT_GE(x, domains[0].lo);
          EXPECT_LE(x, domains[0].hi);
          EXPECT_GE(y, domains[1].lo);
          EXPECT_LE(y, domains[1].hi);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSoundness, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dice::sym
