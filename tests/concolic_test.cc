// Tests for the concolic engine + driver on small instrumented programs:
// the "negate, solve, re-execute" loop of Fig. 1 must systematically cover
// all feasible paths, and do so far faster than random search on a needle.

#include <gtest/gtest.h>

#include <set>

#include "src/sym/concolic.h"

namespace dice::sym {
namespace {

TEST(EngineTest, ConcreteBranchesNotRecorded) {
  Engine engine;
  engine.BeginRun({});
  EXPECT_TRUE(engine.Branch(Bool(true), 1));
  EXPECT_FALSE(engine.Branch(Bool(false), 2));
  EXPECT_TRUE(engine.path().empty());
}

TEST(EngineTest, SymbolicBranchRecorded) {
  Engine engine;
  engine.BeginRun({});
  Value x = engine.MakeSymbolic("x", 32, 5, 0, 100);
  EXPECT_EQ(x.concrete(), 5u);
  bool taken = engine.Branch(x < Value(10), 100);
  EXPECT_TRUE(taken);
  ASSERT_EQ(engine.path().size(), 1u);
  EXPECT_EQ(engine.path()[0].site, 100u);
  EXPECT_TRUE(engine.path()[0].taken);
  // The path constraint is the predicate itself when taken.
  EXPECT_EQ(engine.path()[0].Constraint()->Eval({{0, 5}}), 1u);
  EXPECT_EQ(engine.path()[0].Constraint()->Eval({{0, 50}}), 0u);
}

TEST(EngineTest, AssignmentOverridesSeed) {
  Engine engine;
  engine.BeginRun({});
  Value x = engine.MakeSymbolic("x", 32, 5, 0, 100);
  EXPECT_EQ(x.concrete(), 5u);
  engine.BeginRun({{0, 77}});
  x = engine.MakeSymbolic("x", 32, 5, 0, 100);
  EXPECT_EQ(x.concrete(), 77u);
  EXPECT_EQ(engine.vars().size(), 1u) << "re-binding must not create new variables";
}

TEST(EngineTest, EffectiveAssignmentFillsSeeds) {
  Engine engine;
  engine.BeginRun({{1, 9}});
  engine.MakeSymbolic("a", 32, 3, 0, 100);
  engine.MakeSymbolic("b", 32, 4, 0, 100);
  Assignment eff = engine.EffectiveAssignment();
  EXPECT_EQ(eff.at(0), 3u);
  EXPECT_EQ(eff.at(1), 9u);
}

// --- Driver: full path coverage on a 3-branch program (8 paths) -----------------

TEST(ConcolicDriverTest, CoversAllPathsOfBranchCube) {
  std::set<int> outcomes;
  Program program = [&outcomes](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 0, 0, 100);
    Value y = engine.MakeSymbolic("y", 32, 0, 0, 100);
    Value z = engine.MakeSymbolic("z", 32, 0, 0, 100);
    int path = 0;
    if (engine.Branch(x > Value(50), 1)) {
      path |= 1;
    }
    if (engine.Branch(y == Value(33), 2)) {
      path |= 2;
    }
    if (engine.Branch(z < Value(10), 3)) {
      path |= 4;
    }
    outcomes.insert(path);
  };

  ConcolicOptions options;
  options.max_runs = 64;
  ConcolicDriver driver(options);
  driver.Explore(program);

  EXPECT_EQ(outcomes.size(), 8u) << "all 2^3 paths must be reached";
  EXPECT_EQ(driver.stats().unique_paths, 8u);
  EXPECT_EQ(driver.stats().branches_covered, 6u);  // 3 sites x 2 outcomes
  EXPECT_LE(driver.stats().runs, 20u) << "systematic search should not thrash";
}

// Nested/dependent branches: deep guard requires solving a conjunction.
TEST(ConcolicDriverTest, ReachesDeepNestedBranch) {
  bool reached_core = false;
  Program program = [&reached_core](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 0, 0, 10000);
    if (engine.Branch(x > Value(100), 1)) {
      if (engine.Branch(x < Value(200), 2)) {
        if (engine.Branch(x == Value(150), 3)) {
          reached_core = true;
        }
      }
    }
  };
  ConcolicOptions options;
  options.max_runs = 32;
  ConcolicDriver driver(options);
  driver.Explore(program);
  EXPECT_TRUE(reached_core) << "needle x==150 requires constraint solving";
}

// The classic concolic win: an equality needle in a 2^32 haystack that random
// testing essentially never hits.
TEST(ConcolicDriverTest, FindsEqualityNeedleInFewRuns) {
  bool found = false;
  Program program = [&found](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 7, 0, 0xffffffff);
    if (engine.Branch(x == Value(0xdeadbeef), 1)) {
      found = true;
    }
  };
  ConcolicOptions options;
  options.max_runs = 8;
  ConcolicDriver driver(options);
  driver.Explore(program);
  EXPECT_TRUE(found);
  EXPECT_LE(driver.stats().runs, 3u);
}

TEST(ConcolicDriverTest, InfeasiblePathsReportedUnsat) {
  Program program = [](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 0, 0, 100);
    if (engine.Branch(x < Value(50), 1)) {
      // This branch is unreachable with x < 50:
      engine.Branch(x > Value(80), 2);
    }
  };
  ConcolicOptions options;
  options.max_runs = 32;
  ConcolicDriver driver(options);
  driver.Explore(program);
  EXPECT_GT(driver.stats().solver_unsat, 0u)
      << "negating (x>80) under (x<50) must be proven infeasible";
}

TEST(ConcolicDriverTest, ObserverSeesEveryRun) {
  size_t observed = 0;
  Program program = [](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 0, 0, 100);
    engine.Branch(x < Value(50), 1);
  };
  ConcolicOptions options;
  options.max_runs = 16;
  ConcolicDriver driver(options);
  driver.Explore(program, [&](const Assignment&, const Path&) { ++observed; });
  EXPECT_EQ(observed, driver.stats().runs);
  EXPECT_GE(observed, 2u);
}

TEST(ConcolicDriverTest, IncrementalStepsMatchBatch) {
  auto make_program = [](std::set<int>* outcomes) -> Program {
    return [outcomes](Engine& engine) {
      Value x = engine.MakeSymbolic("x", 32, 0, 0, 100);
      Value y = engine.MakeSymbolic("y", 32, 0, 0, 100);
      int path = 0;
      if (engine.Branch(x > Value(10), 1)) {
        path |= 1;
      }
      if (engine.Branch(y > Value(20), 2)) {
        path |= 2;
      }
      outcomes->insert(path);
    };
  };

  std::set<int> batch_outcomes;
  ConcolicDriver batch{ConcolicOptions{}};
  batch.Explore(make_program(&batch_outcomes));

  std::set<int> step_outcomes;
  ConcolicDriver stepper{ConcolicOptions{}};
  stepper.StartIncremental(make_program(&step_outcomes));
  while (stepper.StepIncremental()) {
  }
  EXPECT_EQ(step_outcomes, batch_outcomes);
  EXPECT_EQ(stepper.stats().unique_paths, batch.stats().unique_paths);
}

TEST(ConcolicDriverTest, RespectsRunBudget) {
  Program program = [](Engine& engine) {
    // Many independent branches -> path explosion; the budget must cap runs.
    for (uint64_t i = 0; i < 12; ++i) {
      Value x = engine.MakeSymbolic("x" + std::to_string(i), 32, 0, 0, 100);
      engine.Branch(x > Value(50), i + 1);
    }
  };
  ConcolicOptions options;
  options.max_runs = 10;
  ConcolicDriver driver(options);
  driver.Explore(program);
  EXPECT_LE(driver.stats().runs, 10u);
}

// --- strategies ------------------------------------------------------------------

class StrategySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategySweep, AllStrategiesCoverSmallCube) {
  std::set<int> outcomes;
  Program program = [&outcomes](Engine& engine) {
    Value x = engine.MakeSymbolic("x", 32, 0, 0, 100);
    Value y = engine.MakeSymbolic("y", 32, 0, 0, 100);
    int path = 0;
    if (engine.Branch(x > Value(50), 1)) {
      path |= 1;
    }
    if (engine.Branch(y > Value(50), 2)) {
      path |= 2;
    }
    outcomes.insert(path);
  };
  ConcolicOptions options;
  options.max_runs = 32;
  options.strategy = GetParam();
  ConcolicDriver driver(options);
  driver.Explore(program);
  EXPECT_EQ(outcomes.size(), 4u) << "strategy " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values("generational", "dfs", "bfs", "random"));

TEST(StrategyTest, HashDistinguishesOutcomes) {
  Path p1;
  p1.push_back(BranchRecord{Expr::MakeVar(0, 1), true, 7});
  Path p2;
  p2.push_back(BranchRecord{Expr::MakeVar(0, 1), false, 7});
  EXPECT_NE(HashDecisions(p1), HashDecisions(p2));
  EXPECT_EQ(HashDecisionsWithFlip(p1, 0), HashDecisions(p2));
}

TEST(StrategyTest, GenerationalDedupesCandidates) {
  GenerationalStrategy strategy;
  Path path;
  path.push_back(BranchRecord{Expr::ULt(Expr::MakeVar(0, 32), Expr::MakeConst(5, 32)), true, 1});
  strategy.AddPath(path, {}, 0);
  strategy.AddPath(path, {}, 0);  // same path again
  EXPECT_EQ(strategy.FrontierSize(), 1u);
}

// --- Solver fast path regression -------------------------------------------------
//
// The slicing + cross-run cache optimizations must be invisible in the
// exploration results: same runs, same unique paths, same coverage, at every
// budget, for a program mixing independent and dependent branches.

TEST(ConcolicDriverTest, FastPathPreservesExplorationResults) {
  auto make_program = [] {
    return [](Engine& engine) {
      Value a = engine.MakeSymbolic("a", 32, 5, 0, 1000);
      Value b = engine.MakeSymbolic("b", 32, 5, 0, 1000);
      Value c = engine.MakeSymbolic("c", 32, 5, 0, 1000);
      engine.Branch(a > Value(100), 1);
      engine.Branch(b > Value(100), 2);
      if (engine.Branch(a + b > Value(900), 3)) {
        engine.Branch(c == Value(77), 4);
      }
      engine.Branch(c < Value(500), 5);
    };
  };
  for (uint64_t budget : {8, 32, 128}) {
    ConcolicOptions baseline_options;
    baseline_options.max_runs = budget;
    baseline_options.solver.enable_slicing = false;
    baseline_options.solver.enable_cache = false;
    ConcolicDriver baseline(baseline_options);
    baseline.Explore(make_program());

    ConcolicOptions fast_options;
    fast_options.max_runs = budget;
    ConcolicDriver fast(fast_options);
    fast.Explore(make_program());

    EXPECT_EQ(baseline.stats().runs, fast.stats().runs) << "budget " << budget;
    EXPECT_EQ(baseline.stats().unique_paths, fast.stats().unique_paths) << "budget " << budget;
    EXPECT_EQ(baseline.stats().branches_covered, fast.stats().branches_covered)
        << "budget " << budget;
    EXPECT_EQ(baseline.stats().max_path_depth, fast.stats().max_path_depth)
        << "budget " << budget;
  }
}

TEST(ConcolicDriverTest, SharedSolverCachePersistsAcrossDrivers) {
  Program program = [](Engine& engine) {
    for (uint64_t i = 0; i < 4; ++i) {
      Value x = engine.MakeSymbolic("x" + std::to_string(i), 16, 10, 0, 1000);
      engine.Branch(x > Value(500), i + 1);
    }
  };
  Solver shared;
  ConcolicStats first_stats;
  ConcolicStats second_stats;
  {
    ConcolicDriver driver(ConcolicOptions{}, &shared);
    driver.Explore(program);
    first_stats = driver.stats();
  }
  uint64_t hits_after_first = shared.stats().cache_hits;
  {
    ConcolicDriver driver(ConcolicOptions{}, &shared);
    driver.Explore(program);
    second_stats = driver.stats();
  }
  EXPECT_EQ(first_stats.runs, second_stats.runs);
  EXPECT_EQ(first_stats.unique_paths, second_stats.unique_paths);
  EXPECT_EQ(first_stats.branches_covered, second_stats.branches_covered);
  EXPECT_GT(shared.stats().cache_hits, hits_after_first)
      << "the second exploration must be served from the warm cache";
}

}  // namespace
}  // namespace dice::sym
