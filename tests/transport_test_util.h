// Shared helpers for the transport test suites: a scriptable fake
// ExplorationService (controllable epochs, recordable checkpoint times, an
// optional condvar gate for deterministic out-of-order tests) and small
// builders for batches and addresses.

#ifndef TESTS_TRANSPORT_TEST_UTIL_H_
#define TESTS_TRANSPORT_TEST_UTIL_H_

#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>

#include "src/dice/exploration_service.h"
#include "src/transport/address.h"
#include "src/util/strings.h"

namespace dice::transport {

// Deterministic, dependency-free ExplorationService: TakeCheckpoint bumps an
// epoch and records `now`; ExecuteBatch validates the epoch like the real
// service and answers one synthetic NarrowReply per update whose fields
// encode what the server saw (so the client can assert end-to-end content).
class FakeService : public ExplorationService {
 public:
  explicit FakeService(std::string name, uint64_t start_epoch = 0)
      : name_(std::move(name)), epoch_(start_epoch) {}

  const std::string& domain_name() const override { return name_; }

  uint64_t TakeCheckpoint(net::SimTime now) override {
    std::lock_guard<std::mutex> lock(mu_);
    last_checkpoint_now_ = now;
    return ++epoch_;
  }

  StatusOr<ExploratoryBatchReply> ExecuteBatch(
      const ExploratoryBatchRequest& request) override {
    MaybeBlock();
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_ == 0) {
      return FailedPreconditionError(name_ + ": no checkpoint taken yet");
    }
    if (request.checkpoint_epoch != epoch_) {
      return FailedPreconditionError(StrFormat(
          "%s: batch targets checkpoint epoch %llu but current epoch is %llu",
          name_.c_str(), static_cast<unsigned long long>(request.checkpoint_epoch),
          static_cast<unsigned long long>(epoch_)));
    }
    ExploratoryBatchReply reply;
    reply.checkpoint_epoch = request.checkpoint_epoch;
    for (const bgp::UpdateMessage& update : request.updates) {
      NarrowReply narrow;
      if (!update.nlri.empty()) {
        narrow.prefix = update.nlri.front();
        narrow.accepted = true;
        narrow.adopted_as_best = true;
      } else if (!update.withdrawn.empty()) {
        narrow.prefix = update.withdrawn.front();
      }
      narrow.would_propagate = epoch_;  // lets tests see which epoch answered
      reply.replies.push_back(narrow);
    }
    reply.counters.clones_materialized = reply.replies.size();
    ++batches_;
    return reply;
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }
  net::SimTime last_checkpoint_now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_checkpoint_now_;
  }
  uint64_t batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

  // Gate: after ArmBlock, the next ExecuteBatch parks on a condvar until
  // Release. WaitUntilBlocked gives the test a deterministic rendezvous —
  // no sleeps anywhere.
  void ArmBlock() {
    std::lock_guard<std::mutex> lock(gate_mu_);
    armed_ = true;
    blocked_ = false;
    released_ = false;
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [this] { return blocked_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(gate_mu_);
    released_ = true;
    gate_cv_.notify_all();
  }

 private:
  void MaybeBlock() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    if (!armed_) {
      return;
    }
    armed_ = false;
    blocked_ = true;
    gate_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return released_; });
  }

  std::string name_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  net::SimTime last_checkpoint_now_ = 0;
  uint64_t batches_ = 0;

  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool armed_ = false;
  bool blocked_ = false;
  bool released_ = false;
};

inline bgp::UpdateMessage TestAnnounce(const char* prefix) {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = bgp::AsPath::Sequence({3, 1, 100});
  update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.3");
  update.nlri.push_back(*bgp::Prefix::Parse(prefix));
  return update;
}

inline ExploratoryBatchRequest TestBatch(uint64_t epoch,
                                         std::initializer_list<const char*> prefixes) {
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = epoch;
  for (const char* prefix : prefixes) {
    request.updates.push_back(TestAnnounce(prefix));
  }
  return request;
}

// Process-unique addresses so parallel ctest invocations never collide.
inline Address UniqueUnixAddress(const char* tag) {
  static int counter = 0;
  return *Address::Parse(StrFormat("unix:/tmp/dice_%s_%d_%d.sock", tag,
                                   static_cast<int>(::getpid()), counter++));
}

inline Address UniqueShmAddress(const char* tag) {
  static int counter = 0;
  return *Address::Parse(StrFormat("shm:/dice_%s_%d_%d", tag,
                                   static_cast<int>(::getpid()), counter++));
}

inline Address LoopbackAddress() { return *Address::Parse("tcp:127.0.0.1:0"); }

}  // namespace dice::transport

#endif  // TESTS_TRANSPORT_TEST_UTIL_H_
