// The RPC layer end to end: envelope codec robustness, server/client round
// trips over TCP and Unix-domain sockets, multi-domain multiplexing with
// pipelined out-of-order replies, reconnect-with-epoch-revalidation after a
// server restart, and bit-identity against the in-process service path.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/transport/client.h"
#include "src/transport/server.h"
#include "src/transport/stream.h"
#include "src/transport/wire.h"
#include "tests/transport_test_util.h"

namespace dice::transport {
namespace {

// --- Envelope codec ----------------------------------------------------------

RpcRequest MakeRequest() {
  RpcRequest request;
  request.correlation_id = 0x1122334455667788ull;
  request.domain_id = 7;
  request.op = RpcOp::kExecuteBatch;
  request.payload = {1, 2, 3, 4, 5};
  return request;
}

RpcReply MakeReply() {
  RpcReply reply;
  reply.correlation_id = 99;
  reply.domain_id = 7;
  reply.op = RpcOp::kTakeCheckpoint;
  reply.status_code = StatusCode::kFailedPrecondition;
  reply.error = "stale epoch";
  reply.payload = {9, 8};
  return reply;
}

TEST(RpcWireTest, RequestRoundTrips) {
  RpcRequest request = MakeRequest();
  StatusOr<RpcRequest> parsed = RpcRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, request);
}

TEST(RpcWireTest, ReplyRoundTripsAndRematerializesStatus) {
  RpcReply reply = MakeReply();
  StatusOr<RpcReply> parsed = RpcReply::Parse(reply.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, reply);
  Status status = parsed->ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "stale epoch");
}

TEST(RpcWireTest, HelloRoundTrips) {
  HelloReply hello;
  hello.domains.push_back(HelloDomain{1, "upstream", 42});
  hello.domains.push_back(HelloDomain{2, "peerlat", 0});
  StatusOr<HelloReply> parsed = HelloReply::Parse(hello.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, hello);
}

TEST(RpcWireTest, EveryTruncationIsAnError) {
  Bytes request_wire = MakeRequest().Serialize();
  for (size_t len = 0; len < request_wire.size(); ++len) {
    Bytes truncated(request_wire.begin(),
                    request_wire.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(RpcRequest::Parse(truncated).ok()) << "len " << len;
  }
  Bytes reply_wire = MakeReply().Serialize();
  for (size_t len = 0; len < reply_wire.size(); ++len) {
    Bytes truncated(reply_wire.begin(), reply_wire.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(RpcReply::Parse(truncated).ok()) << "len " << len;
  }
}

TEST(RpcWireTest, EveryBitFlipIsAnError) {
  Bytes wire = MakeRequest().Serialize();
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = wire;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(RpcRequest::Parse(flipped).ok())
          << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
}

TEST(RpcWireTest, RequestNeverParsesAsReply) {
  EXPECT_FALSE(RpcReply::Parse(MakeRequest().Serialize()).ok());
  EXPECT_FALSE(RpcRequest::Parse(MakeReply().Serialize()).ok());
}

TEST(RpcWireTest, UnknownOpIsRejected) {
  EXPECT_FALSE(ParseRpcOp(0).ok());
  EXPECT_FALSE(ParseRpcOp(4).ok());
  EXPECT_FALSE(ParseRpcOp(255).ok());
}

// --- Server + client over sockets --------------------------------------------

struct ServerHarness {
  explicit ServerHarness(const Address& endpoint, size_t workers = 0,
                         uint64_t initial_epoch = 0, uint64_t start_epoch = 0) {
    ExplorationServer::Options options;
    options.workers = workers;
    server = std::make_unique<ExplorationServer>(options);
    auto owned_a = std::make_unique<FakeService>("upstream", start_epoch);
    auto owned_b = std::make_unique<FakeService>("peerlat", start_epoch);
    domain_a = owned_a.get();
    domain_b = owned_b.get();
    EXPECT_EQ(server->AddDomain(std::move(owned_a), initial_epoch), 1u);
    EXPECT_EQ(server->AddDomain(std::move(owned_b), initial_epoch), 2u);
    Status added = server->AddEndpoint(endpoint);
    EXPECT_TRUE(added.ok()) << added;
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
    bound = *server->BoundAddress(0);
  }

  std::unique_ptr<ExplorationServer> server;
  FakeService* domain_a = nullptr;
  FakeService* domain_b = nullptr;
  Address bound;
};

RpcChannel::Options FastOptions() {
  RpcChannel::Options options;
  options.connect_timeout_ms = 2000;
  options.call_timeout_ms = 10000;
  options.reconnect_attempts = 4;
  options.reconnect_backoff_ms = 5;
  return options;
}

TEST(RpcTransportTest, HelloAnnouncesEveryDomainWithEpochs) {
  ServerHarness harness(LoopbackAddress());
  RpcChannel channel(harness.bound, FastOptions());
  ASSERT_TRUE(channel.Connect().ok());
  ASSERT_EQ(channel.hello().domains.size(), 2u);
  EXPECT_EQ(channel.hello().domains[0].id, 1u);
  EXPECT_EQ(channel.hello().domains[0].name, "upstream");
  EXPECT_EQ(channel.hello().domains[0].epoch, 0u);
  EXPECT_EQ(channel.hello().domains[1].id, 2u);
  EXPECT_EQ(channel.hello().domains[1].name, "peerlat");
}

void RoundTripOver(const Address& endpoint) {
  ServerHarness harness(endpoint);
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(harness.bound, FastOptions());
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  ASSERT_EQ(stubs->size(), 2u);
  ExplorationService& upstream = *(*stubs)[0];
  EXPECT_EQ(upstream.domain_name(), "upstream");

  const uint64_t epoch = upstream.TakeCheckpoint(1234);
  ASSERT_EQ(epoch, 1u);
  EXPECT_EQ(harness.domain_a->last_checkpoint_now(), 1234u);

  StatusOr<ExploratoryBatchReply> reply =
      upstream.ExecuteBatch(TestBatch(epoch, {"203.0.113.0/24", "192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->replies.size(), 2u);
  EXPECT_EQ(reply->checkpoint_epoch, epoch);
  EXPECT_TRUE(reply->replies[0].accepted);
  EXPECT_EQ(reply->replies[0].prefix, *bgp::Prefix::Parse("203.0.113.0/24"));

  // A second domain on the same connection answers independently.
  ExplorationService& peerlat = *(*stubs)[1];
  const uint64_t other_epoch = peerlat.TakeCheckpoint(1234);
  ASSERT_EQ(other_epoch, 1u);
  StatusOr<ExploratoryBatchReply> other =
      peerlat.ExecuteBatch(TestBatch(other_epoch, {"198.51.100.0/24"}));
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_EQ(harness.domain_b->batches(), 1u);
}

TEST(RpcTransportTest, RoundTripOverTcp) { RoundTripOver(LoopbackAddress()); }

TEST(RpcTransportTest, RoundTripOverUnixSocket) {
  RoundTripOver(UniqueUnixAddress("rpc"));
}

TEST(RpcTransportTest, ServerSideErrorsTravelAsStatus) {
  ServerHarness harness(LoopbackAddress());
  auto channel = std::make_shared<RpcChannel>(harness.bound, FastOptions());
  ASSERT_TRUE(channel->Connect().ok());
  SocketExplorationService stub(channel, 1, "upstream");

  // Batch before checkpoint: rejected locally, no wire round trip.
  StatusOr<ExploratoryBatchReply> early = stub.ExecuteBatch(TestBatch(1, {"10.0.0.0/24"}));
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_EQ(stub.TakeCheckpoint(10), 1u);
  // Stale epoch: also rejected locally against the public epoch space.
  StatusOr<ExploratoryBatchReply> stale = stub.ExecuteBatch(TestBatch(7, {"10.0.0.0/24"}));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);

  // Unknown domain id: NotFound produced by the server, carried as data.
  SocketExplorationService ghost(channel, 42, "ghost");
  EXPECT_EQ(ghost.TakeCheckpoint(10), 0u) << "remote NotFound must map to epoch 0";
}

TEST(RpcTransportTest, CorruptEnvelopeKillsConnectionButNotServer) {
  ServerHarness harness(LoopbackAddress());
  {
    StatusOr<FrameStream> raw = FrameStream::Dial(harness.bound, 2000);
    ASSERT_TRUE(raw.ok()) << raw.status();
    // A well-framed stream frame whose body is garbage: the envelope parse
    // fails and the server drops the connection.
    ASSERT_TRUE(raw->SendFrame({0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3}).ok());
    StatusOr<Bytes> answer = raw->RecvFrame(2000);
    EXPECT_FALSE(answer.ok()) << "server answered a corrupt envelope";
  }
  // The server keeps serving fresh connections.
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(harness.bound, FastOptions());
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  EXPECT_EQ((*stubs)[0]->TakeCheckpoint(5), 1u);
}

TEST(RpcTransportTest, StalledDomainDoesNotBlockOthers) {
  // workers=2 so the blocked domain occupies one worker while the other
  // domain's request flows through the second.
  ServerHarness harness(LoopbackAddress(), /*workers=*/2);
  auto channel = std::make_shared<RpcChannel>(harness.bound, FastOptions());
  ASSERT_TRUE(channel->Connect().ok());
  SocketExplorationService slow(channel, 1, "upstream");
  SocketExplorationService fast(channel, 2, "peerlat");
  ASSERT_EQ(slow.TakeCheckpoint(1), 1u);
  ASSERT_EQ(fast.TakeCheckpoint(1), 1u);

  // Park the next batch on domain A inside the server — its worker blocks on
  // the fake's gate, holding the per-domain mutex.
  harness.domain_a->ArmBlock();
  ExploratoryBatchRequest slow_batch = TestBatch(1, {"203.0.113.0/24"});
  StatusOr<uint64_t> slow_call =
      channel->StartCall(1, RpcOp::kExecuteBatch, slow_batch.Serialize());
  ASSERT_TRUE(slow_call.ok()) << slow_call.status();
  harness.domain_a->WaitUntilBlocked();

  // With domain A wedged, a full round trip to domain B still completes —
  // this is the "one slow domain never stalls the connection" property.
  StatusOr<ExploratoryBatchReply> fast_reply =
      fast.ExecuteBatch(TestBatch(1, {"198.51.100.0/24"}));
  ASSERT_TRUE(fast_reply.ok()) << fast_reply.status();

  // Now release A and collect its (later) reply by correlation id.
  harness.domain_a->Release();
  StatusOr<RpcReply> slow_reply = channel->Await(*slow_call);
  ASSERT_TRUE(slow_reply.ok()) << slow_reply.status();
  EXPECT_EQ(slow_reply->status_code, StatusCode::kOk);
  StatusOr<ExploratoryBatchReply> parsed =
      ExploratoryBatchReply::Parse(slow_reply->payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->replies.size(), 1u);
  // 2 checkpoints + the fast batch + the awaited slow batch; the Hello
  // exchange is not a "call" reply.
  EXPECT_EQ(channel->replies_received(), 4u);
}

// A scripted ClientTransport that answers Hello/TakeCheckpoint inline but
// holds ExecuteBatch replies until `hold` of them have accumulated, then
// releases them in REVERSE send order — a deterministic out-of-order server.
// Each batch reply tags would_propagate with its correlation id so the test
// can prove every Await got its own answer.
class ReorderingTransport : public ClientTransport {
 public:
  explicit ReorderingTransport(size_t hold) : hold_(hold) {}

  Status SendFrame(const Bytes& frame) override {
    StatusOr<RpcRequest> request = RpcRequest::Parse(frame);
    if (!request.ok()) {
      return request.status();
    }
    RpcReply reply;
    reply.correlation_id = request->correlation_id;
    reply.domain_id = request->domain_id;
    reply.op = request->op;
    switch (request->op) {
      case RpcOp::kHello: {
        HelloReply hello;
        hello.domains.push_back(HelloDomain{1, "upstream", 0});
        reply.payload = hello.Serialize();
        inbox_.push_back(std::move(reply));
        break;
      }
      case RpcOp::kTakeCheckpoint: {
        ByteWriter writer;
        writer.PutU64(++epoch_);
        reply.payload = writer.Take();
        inbox_.push_back(std::move(reply));
        break;
      }
      case RpcOp::kExecuteBatch: {
        StatusOr<ExploratoryBatchRequest> batch =
            ExploratoryBatchRequest::Parse(request->payload);
        if (!batch.ok()) {
          return batch.status();
        }
        ExploratoryBatchReply out;
        out.checkpoint_epoch = batch->checkpoint_epoch;
        NarrowReply narrow;
        narrow.prefix = batch->updates.front().nlri.front();
        narrow.accepted = true;
        narrow.would_propagate = request->correlation_id;
        out.replies.push_back(narrow);
        reply.payload = out.Serialize();
        held_.push_back(std::move(reply));
        if (held_.size() >= hold_) {
          while (!held_.empty()) {
            inbox_.push_back(std::move(held_.back()));
            held_.pop_back();
          }
        }
        break;
      }
    }
    return Status::Ok();
  }

  StatusOr<Bytes> RecvFrame(int) override {
    if (inbox_.empty()) {
      return DeadlineExceededError("scripted transport has nothing to say");
    }
    Bytes frame = inbox_.front().Serialize();
    inbox_.pop_front();
    return frame;
  }

  void Close() override {}

 private:
  size_t hold_;
  uint64_t epoch_ = 0;
  std::deque<RpcReply> inbox_;
  std::deque<RpcReply> held_;
};

TEST(RpcTransportTest, OutOfOrderRepliesCorrelateThroughParking) {
  RpcChannel::Options options = FastOptions();
  options.dialer = [](const Address&, int) {
    return StatusOr<std::unique_ptr<ClientTransport>>(
        std::make_unique<ReorderingTransport>(/*hold=*/3));
  };
  RpcChannel channel(LoopbackAddress(), options);
  ASSERT_TRUE(channel.Connect().ok());

  // Three pipelined batch calls; the scripted server answers them 3, 2, 1.
  std::vector<uint64_t> ids;
  for (const char* prefix : {"10.1.0.0/24", "10.2.0.0/24", "10.3.0.0/24"}) {
    StatusOr<uint64_t> id =
        channel.StartCall(1, RpcOp::kExecuteBatch, TestBatch(1, {prefix}).Serialize());
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  // Await in send order: the first Await must park two foreign replies
  // before its own arrives; the later Awaits are served from the park.
  for (uint64_t id : ids) {
    StatusOr<RpcReply> reply = channel.Await(id);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->correlation_id, id);
    StatusOr<ExploratoryBatchReply> parsed =
        ExploratoryBatchReply::Parse(reply->payload);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_EQ(parsed->replies.size(), 1u);
    EXPECT_EQ(parsed->replies[0].would_propagate, id)
        << "a parked reply was correlated to the wrong call";
  }
  EXPECT_EQ(channel.out_of_order_replies(), 2u);
}

TEST(RpcTransportTest, ReconnectAfterRestartRevalidatesEpochs) {
  Address endpoint = UniqueUnixAddress("rpc_restart");
  auto harness = std::make_unique<ServerHarness>(endpoint);
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(endpoint, FastOptions());
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  auto* stub = static_cast<SocketExplorationService*>((*stubs)[0].get());

  ASSERT_EQ(stub->TakeCheckpoint(777), 1u);
  ASSERT_TRUE(stub->ExecuteBatch(TestBatch(1, {"203.0.113.0/24"})).ok());

  // "SIGKILL": the server dies taking every connection with it; a cold
  // replacement (epoch 0 — it lost the checkpoint) binds the same path.
  harness.reset();
  ServerHarness replacement(endpoint);

  // The very next batch reconnects, notices the advertised epoch no longer
  // matches, replays TakeCheckpoint at the *remembered* sim-time, and then
  // executes — invisible to the caller except for the counters.
  StatusOr<ExploratoryBatchReply> reply =
      stub->ExecuteBatch(TestBatch(1, {"192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->checkpoint_epoch, 1u) << "public epoch must be preserved";
  EXPECT_EQ(stub->revalidations(), 1u);
  EXPECT_EQ(replacement.domain_a->last_checkpoint_now(), 777u)
      << "checkpoint must be replayed at the remembered sim-time";
  EXPECT_EQ(replacement.domain_a->batches(), 1u);
}

TEST(RpcTransportTest, WarmRestartWithMatchingEpochSkipsReplay) {
  Address endpoint = UniqueUnixAddress("rpc_warm");
  auto harness = std::make_unique<ServerHarness>(endpoint);
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(endpoint, FastOptions());
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  auto* stub = static_cast<SocketExplorationService*>((*stubs)[0].get());
  ASSERT_EQ(stub->TakeCheckpoint(5), 1u);

  harness.reset();
  // Warm restart: the replacement restored its snapshot — services already
  // at epoch 1, Hello advertises initial_epoch 1.
  ServerHarness replacement(endpoint, /*workers=*/0, /*initial_epoch=*/1,
                            /*start_epoch=*/1);

  StatusOr<ExploratoryBatchReply> reply =
      stub->ExecuteBatch(TestBatch(1, {"192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(stub->revalidations(), 0u)
      << "matching advertised epoch must not replay the checkpoint";
  EXPECT_EQ(replacement.domain_a->last_checkpoint_now(), 0u);
}

// --- Bit-identity with the in-process path -----------------------------------

std::unique_ptr<InProcessExplorationService> MakeRealService() {
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "upstream";
  config->local_as = 7;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.7");
  bgp::NeighborConfig from_provider;
  from_provider.address = *bgp::Ipv4Address::Parse("10.0.0.3");
  from_provider.remote_as = 3;
  config->neighbors.push_back(from_provider);

  bgp::RouterState state;
  state.config = config;
  bgp::Route victim;
  victim.peer = 9;
  victim.peer_as = 9;
  bgp::PathAttributes victim_attrs;
  victim_attrs.origin = bgp::Origin::kIgp;
  victim_attrs.as_path = bgp::AsPath::Sequence({9, 64500});
  victim.attrs = std::move(victim_attrs);
  state.rib.AddRoute(*bgp::Prefix::Parse("192.0.2.0/24"), victim);

  bgp::PeerView provider_view;
  provider_view.id = 2;
  provider_view.remote_as = 3;
  provider_view.address = *bgp::Ipv4Address::Parse("10.0.0.3");
  provider_view.established = true;
  return std::make_unique<InProcessExplorationService>("upstream", std::move(state),
                                                       std::vector<bgp::PeerView>{provider_view},
                                                       2);
}

TEST(RpcTransportTest, SocketPathIsBitIdenticalToInProcessPath) {
  // Same state, same batch: once through a local InProcessExplorationService,
  // once across a real socket to an identical service. The replies must be
  // equal field for field.
  auto local = MakeRealService();

  ExplorationServer server;
  server.AddDomain(MakeRealService());
  ASSERT_TRUE(server.AddEndpoint(LoopbackAddress()).ok());
  ASSERT_TRUE(server.Start().ok());
  StatusOr<std::vector<std::unique_ptr<ExplorationService>>> stubs =
      ConnectRemoteDomains(*server.BoundAddress(0), FastOptions());
  ASSERT_TRUE(stubs.ok()) << stubs.status();
  ExplorationService& remote = *(*stubs)[0];

  const uint64_t local_epoch = local->TakeCheckpoint(50);
  const uint64_t remote_epoch = remote.TakeCheckpoint(50);
  ASSERT_EQ(local_epoch, remote_epoch);

  ExploratoryBatchRequest batch =
      TestBatch(local_epoch, {"192.0.2.0/24", "203.0.113.0/24", "10.7.0.0/16"});
  StatusOr<ExploratoryBatchReply> local_reply = local->ExecuteBatch(batch);
  StatusOr<ExploratoryBatchReply> remote_reply = remote.ExecuteBatch(batch);
  ASSERT_TRUE(local_reply.ok()) << local_reply.status();
  ASSERT_TRUE(remote_reply.ok()) << remote_reply.status();
  EXPECT_EQ(*local_reply, *remote_reply)
      << "the socket transport changed a verdict";
}

}  // namespace
}  // namespace dice::transport
