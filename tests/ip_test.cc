// Tests for IPv4 address/prefix types, including parameterized sweeps over
// containment relations.

#include <gtest/gtest.h>

#include "src/bgp/ip.h"

namespace dice::bgp {
namespace {

TEST(Ipv4AddressTest, ParseAndFormat) {
  auto a = Ipv4Address::Parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bits(), 0xc0000201u);
  EXPECT_EQ(a->ToString(), "192.0.2.1");
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.-1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 ").has_value());
}

TEST(Ipv4AddressTest, ConstructorFromOctets) {
  Ipv4Address a(10, 1, 2, 3);
  EXPECT_EQ(a.ToString(), "10.1.2.3");
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 0), Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), *Ipv4Address::Parse("1.2.3.4"));
}

TEST(PrefixTest, MakeCanonicalizesHostBits) {
  Prefix p = Prefix::Make(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.ToString(), "10.1.0.0/16");
  EXPECT_EQ(p, *Prefix::Parse("10.1.0.0/16"));
}

TEST(PrefixTest, MakeClampsLength) {
  Prefix p = Prefix::Make(Ipv4Address(1, 2, 3, 4), 99);
  EXPECT_EQ(p.length(), 32);
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::Parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::Parse("/8").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/x").has_value());
}

TEST(PrefixTest, MaskFor) {
  EXPECT_EQ(Prefix::MaskFor(0), 0u);
  EXPECT_EQ(Prefix::MaskFor(8), 0xff000000u);
  EXPECT_EQ(Prefix::MaskFor(24), 0xffffff00u);
  EXPECT_EQ(Prefix::MaskFor(32), 0xffffffffu);
}

TEST(PrefixTest, DefaultRouteContainsEverything) {
  Prefix def = *Prefix::Parse("0.0.0.0/0");
  EXPECT_TRUE(def.Contains(Ipv4Address(0, 0, 0, 0)));
  EXPECT_TRUE(def.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(def.Covers(*Prefix::Parse("203.0.113.0/24")));
}

struct CoverCase {
  const char* outer;
  const char* inner;
  bool covers;
};

class PrefixCoverTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(PrefixCoverTest, Covers) {
  const CoverCase& c = GetParam();
  Prefix outer = *Prefix::Parse(c.outer);
  Prefix inner = *Prefix::Parse(c.inner);
  EXPECT_EQ(outer.Covers(inner), c.covers) << c.outer << " covers " << c.inner;
  // Covers is reflexive and antisymmetric for distinct prefixes.
  EXPECT_TRUE(outer.Covers(outer));
  if (c.covers && outer != inner) {
    EXPECT_FALSE(inner.Covers(outer));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Containment, PrefixCoverTest,
    ::testing::Values(
        CoverCase{"10.0.0.0/8", "10.1.0.0/16", true},
        CoverCase{"10.0.0.0/8", "10.0.0.0/8", true},
        CoverCase{"10.0.0.0/8", "11.0.0.0/16", false},
        CoverCase{"10.1.0.0/16", "10.0.0.0/8", false},
        CoverCase{"0.0.0.0/0", "192.168.1.0/24", true},
        CoverCase{"203.0.113.0/24", "203.0.113.128/25", true},
        CoverCase{"203.0.113.0/24", "203.0.112.0/25", false},
        CoverCase{"203.0.113.4/30", "203.0.113.4/32", true},
        CoverCase{"203.0.113.4/30", "203.0.113.8/32", false},
        // The YouTube incident shape: /24 inside the /22.
        CoverCase{"208.65.152.0/22", "208.65.153.0/24", true}));

class PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweep, RoundTripsAndContainsSelf) {
  uint8_t len = static_cast<uint8_t>(GetParam());
  Prefix p = Prefix::Make(Ipv4Address(0xc0a80000u | 0x1234u), len);
  auto reparsed = Prefix::Parse(p.ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, p);
  EXPECT_TRUE(p.Contains(p.address()));
  // Canonical form: no host bits below the mask.
  EXPECT_EQ(p.address().bits() & ~p.mask(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthSweep, ::testing::Range(0, 33));

}  // namespace
}  // namespace dice::bgp
