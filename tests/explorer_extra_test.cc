// Additional coverage: trie descent walking (the instrumented-lookup hook),
// checkpoint freshness semantics of repeated exploration, and checker corner
// cases around locally originated routes.

#include <gtest/gtest.h>

#include "src/bgp/prefix_trie.h"
#include "src/dice/explorer.h"

namespace dice {
namespace {

using bgp::Prefix;

Prefix P(const char* s) { return *Prefix::Parse(s); }

// --- PrefixTrie::WalkDescent -----------------------------------------------

TEST(WalkDescentTest, VisitsRootToLeafForContainedAddress) {
  bgp::PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.1.0.0/16"), 2);
  trie.Insert(P("10.1.2.0/24"), 3);

  std::vector<Prefix> visited;
  trie.WalkDescent(*bgp::Ipv4Address::Parse("10.1.2.3"),
                   [&](const Prefix& key, bool) { visited.push_back(key); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], P("10.0.0.0/8"));
  EXPECT_EQ(visited[1], P("10.1.0.0/16"));
  EXPECT_EQ(visited[2], P("10.1.2.0/24"));
}

TEST(WalkDescentTest, StopsAtFirstNonContainingNode) {
  bgp::PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.1.2.0/24"), 3);

  // 10.200.0.1 is inside 10/8 but descends to the 10.1.2.0/24 node (the only
  // child on that side may mismatch): the mismatching node is still *visited*
  // (its containment test runs) and then the walk stops.
  std::vector<std::pair<Prefix, bool>> visited;
  trie.WalkDescent(*bgp::Ipv4Address::Parse("10.200.0.1"),
                   [&](const Prefix& key, bool has_value) {
                     visited.push_back({key, has_value});
                   });
  ASSERT_GE(visited.size(), 1u);
  EXPECT_EQ(visited[0].first, P("10.0.0.0/8"));
  // The last visited node is the first whose containment test failed (or a
  // leaf); every earlier node contains the address.
  for (size_t i = 0; i + 1 < visited.size(); ++i) {
    EXPECT_TRUE(visited[i].first.Contains(*bgp::Ipv4Address::Parse("10.200.0.1")));
  }
}

TEST(WalkDescentTest, ReportsValuelessForkNodes) {
  bgp::PrefixTrie<int> trie;
  // These two force a valueless fork at their common prefix.
  trie.Insert(P("10.1.0.0/16"), 1);
  trie.Insert(P("10.2.0.0/16"), 2);
  bool saw_fork = false;
  trie.WalkDescent(*bgp::Ipv4Address::Parse("10.1.0.1"), [&](const Prefix&, bool has_value) {
    if (!has_value) {
      saw_fork = true;
    }
  });
  EXPECT_TRUE(saw_fork);
}

TEST(WalkDescentTest, EmptyTrieVisitsNothing) {
  bgp::PrefixTrie<int> trie;
  size_t visits = 0;
  trie.WalkDescent(*bgp::Ipv4Address::Parse("10.0.0.1"),
                   [&](const Prefix&, bool) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

// --- Explorer re-checkpoint freshness ----------------------------------------

bgp::RouterState MakeProviderState(bool with_victim) {
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "provider";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
  bgp::NeighborConfig customer;
  customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer.remote_as = 1;
  config->neighbors.push_back(customer);

  bgp::RouterState state;
  state.config = config;
  if (with_victim) {
    bgp::Route victim;
    victim.peer = 9;
    victim.peer_as = 9;
    bgp::PathAttributes victim_attrs;
    victim_attrs.origin = bgp::Origin::kIgp;
    victim_attrs.as_path = bgp::AsPath::Sequence({9, 64500});
    victim.attrs = std::move(victim_attrs);
    state.rib.AddRoute(P("192.0.2.0/24"), victim);
  }
  return state;
}

bgp::PeerView CustomerView() {
  bgp::PeerView v;
  v.id = 1;
  v.remote_as = 1;
  v.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  v.established = true;
  return v;
}

bgp::UpdateMessage Seed() {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence({1, 100});
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(P("10.1.7.0/24"));
  return u;
}

TEST(ExplorerFreshnessTest, NewCheckpointSeesNewState) {
  ExplorerOptions options;
  options.concolic.max_runs = 150;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());

  // First round: empty table, nothing to hijack.
  bgp::RouterState empty_state = MakeProviderState(/*with_victim=*/false);
  explorer.TakeCheckpoint(empty_state, {CustomerView()}, 0);
  explorer.ExploreSeed(Seed(), 1);
  size_t detections_round1 = explorer.report().detections.size();
  EXPECT_EQ(detections_round1, 0u);

  // The "live system" then learns the victim; a fresh checkpoint must expose
  // it to the next exploration round — the property that makes DiCE *online*.
  bgp::RouterState with_victim = MakeProviderState(/*with_victim=*/true);
  explorer.TakeCheckpoint(with_victim, {CustomerView()}, 1);
  explorer.ExploreSeed(Seed(), 1);
  EXPECT_GT(explorer.report().detections.size(), detections_round1)
      << "post-checkpoint exploration must see the newly learned victim";
}

TEST(ExplorerFreshnessTest, ReportAccumulatesAcrossSeeds) {
  ExplorerOptions options;
  options.concolic.max_runs = 50;
  Explorer explorer(options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  bgp::RouterState state = MakeProviderState(true);
  explorer.TakeCheckpoint(state, {CustomerView()}, 0);

  explorer.ExploreSeed(Seed(), 1);
  uint64_t clones_after_first = explorer.report().clones_made;
  explorer.ExploreSeed(Seed(), 1);
  EXPECT_GT(explorer.report().clones_made, clones_after_first);
}

// --- HijackChecker: locally originated victim ---------------------------------

TEST(HijackCheckerLocalTest, LocalRouteOverrideUsesLocalAs) {
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "provider";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");

  bgp::RouterState state;
  state.config = config;
  bgp::Route local;
  local.peer = bgp::kLocalPeer;
  bgp::PathAttributes local_attrs;
  local_attrs.origin = bgp::Origin::kIgp;
  local.attrs = std::move(local_attrs);
  state.rib.AddRoute(P("10.3.0.0/16"), local);

  HijackChecker checker;
  checker.OnCheckpoint(state);

  ExplorationOutcome outcome;
  outcome.prefix = P("10.3.0.0/16");
  outcome.installed = true;
  outcome.became_best = true;
  outcome.new_origin_as = 4242;
  outcome.input = Seed();
  bgp::RouterState after = state;
  RunInfo info{0, &outcome, &after};
  std::vector<Detection> detections;
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].old_origin, 3u)
      << "locally originated prefixes report the local AS as baseline origin";

  // More-specific hijack inside locally originated space is also flagged.
  detections.clear();
  outcome.prefix = P("10.3.9.0/24");
  checker.OnRun(info, &detections);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].victim, P("10.3.0.0/16"));
}

}  // namespace
}  // namespace dice
