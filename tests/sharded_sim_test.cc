// The sharded-simulation wall: unit tests for net::ShardedEventLoop's
// partitioning, lookahead windows, and deterministic cross-shard merge, plus
// the bit-identity wall — serial vs shards={1,2,8} must agree on events
// executed, serialized router state, and exploration detections for Fig2,
// a 256-session provider fanout, and the ScaleRing scale topology.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/topology.h"
#include "src/bgp/router.h"
#include "src/dice/checkers.h"
#include "src/dice/explorer.h"
#include "src/net/network.h"
#include "src/net/sharded_event_loop.h"
#include "src/trace/feed.h"
#include "src/util/frame.h"

namespace dice {
namespace {

using net::EventLoop;
using net::NodeId;
using net::ShardedEventLoop;
using net::SimTime;

ShardedEventLoop::Options ShardOptions(uint32_t shards) {
  ShardedEventLoop::Options options;
  options.shards = shards;
  return options;
}

// --- ShardedEventLoop units -------------------------------------------------

TEST(ShardedEventLoopTest, ShardsOneMatchesSerialOrdering) {
  std::vector<int> serial_order;
  EventLoop serial;
  serial.At(30, [&] { serial_order.push_back(3); });
  serial.At(10, [&] { serial_order.push_back(1); });
  serial.At(10, [&] { serial_order.push_back(2); });
  size_t serial_executed = serial.RunUntil(100);

  std::vector<int> sharded_order;
  ShardedEventLoop sharded(ShardOptions(1));
  sharded.loop_of(7).At(30, [&] { sharded_order.push_back(3); });
  sharded.loop_of(7).At(10, [&] { sharded_order.push_back(1); });
  sharded.loop_of(7).At(10, [&] { sharded_order.push_back(2); });
  size_t sharded_executed = sharded.RunUntil(100);

  EXPECT_EQ(serial_order, sharded_order);
  EXPECT_EQ(serial_executed, sharded_executed);
  EXPECT_EQ(serial.now(), sharded.now());
}

TEST(ShardedEventLoopTest, DefaultPartitionerIsIdModShards) {
  ShardedEventLoop sharded(ShardOptions(4));
  EXPECT_EQ(sharded.ShardOf(0), 0u);
  EXPECT_EQ(sharded.ShardOf(5), 1u);
  EXPECT_EQ(sharded.ShardOf(7), 3u);
  EXPECT_EQ(sharded.ShardOf(8), 0u);
}

TEST(ShardedEventLoopTest, ExplicitAssignmentWinsOverDefault) {
  ShardedEventLoop sharded(ShardOptions(4));
  sharded.AssignNode(5, 2);
  EXPECT_EQ(sharded.ShardOf(5), 2u);
  EXPECT_EQ(sharded.ShardOf(6), 2u);  // default partitioner for the rest
}

TEST(ShardedEventLoopTest, NarrowLookaheadTakesMinimum) {
  ShardedEventLoop sharded(ShardOptions(2));
  EXPECT_EQ(sharded.lookahead(), ShardedEventLoop::kUnboundedLookahead);
  sharded.NarrowLookahead(5000);
  sharded.NarrowLookahead(7000);
  sharded.NarrowLookahead(3000);
  EXPECT_EQ(sharded.lookahead(), 3000u);
}

TEST(ShardedEventLoopTest, CrossShardMergeOrdersBySourceShardThenSequence) {
  ShardedEventLoop sharded(ShardOptions(3));
  // All three land on shard 0 at t=10; insertion order (shard 2 first) must
  // not matter — the merge sorts by (when, source shard, sequence).
  std::vector<int> order;
  sharded.CrossShardAt(2, 0, 10, [&] { order.push_back(3); });
  sharded.CrossShardAt(1, 0, 10, [&] { order.push_back(1); });
  sharded.CrossShardAt(1, 0, 10, [&] { order.push_back(2); });
  sharded.RunUntil(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sharded.cross_shard_messages(), 3u);
}

TEST(ShardedEventLoopTest, StopInsideCallbackHaltsAtWindowBarrier) {
  ShardedEventLoop sharded(ShardOptions(2));
  sharded.NarrowLookahead(10);  // bounded windows so the stop can take effect
  bool late_ran = false;
  sharded.shard(0).At(5, [&] { sharded.Stop(); });
  sharded.shard(1).At(100, [&] { late_ran = true; });
  sharded.RunUntil(200);
  EXPECT_FALSE(late_ran);
  EXPECT_GT(sharded.pending(), 0u);
  // A fresh run picks the remaining event up.
  sharded.RunUntil(200);
  EXPECT_TRUE(late_ran);
}

TEST(ShardedEventLoopTest, RunUntilAdvancesAllShardClocksToDeadline) {
  ShardedEventLoop sharded(ShardOptions(3));
  sharded.RunUntil(500);
  EXPECT_EQ(sharded.now(), 500u);
  for (uint32_t s = 0; s < sharded.shard_count(); ++s) {
    EXPECT_EQ(sharded.shard(s).now(), 500u);
  }
}

TEST(ShardedEventLoopTest, CrossShardChainDrainsUnderRun) {
  // A ping-pong chain across shards: Run() must keep flushing outboxes until
  // everything (queues and in-flight cross messages) drains.
  ShardedEventLoop sharded(ShardOptions(2));
  sharded.NarrowLookahead(5);
  int hops = 0;
  std::function<void(uint32_t, SimTime)> hop = [&](uint32_t shard, SimTime when) {
    ++hops;
    if (hops >= 8) {
      return;
    }
    uint32_t next = 1 - shard;
    sharded.CrossShardAt(shard, next, when + 5, [&hop, next, when] { hop(next, when + 5); });
  };
  sharded.CrossShardAt(0, 1, 5, [&hop] { hop(1, 5); });
  size_t executed = sharded.Run();
  EXPECT_EQ(hops, 8);
  EXPECT_EQ(executed, 8u);
  EXPECT_TRUE(sharded.empty());
  EXPECT_GE(sharded.windows_executed(), 8u);
}

TEST(ShardedEventLoopTest, WindowsRespectLookahead) {
  ShardedEventLoop sharded(ShardOptions(2));
  sharded.NarrowLookahead(10);
  // Three events 25 apart: each needs its own window (plus barriers between).
  for (SimTime t : {10u, 35u, 60u}) {
    sharded.shard(0).At(t, [] {});
  }
  sharded.RunUntil(100);
  EXPECT_EQ(sharded.windows_executed(), 3u);
}

// --- Bit-identity wall -------------------------------------------------------

struct SimResult {
  uint64_t events = 0;
  uint32_t state_digest = 0;
  uint32_t detections_digest = 0;
  size_t detections = 0;
};

uint32_t DetectionsDigest(const std::vector<Detection>& detections) {
  std::string all;
  for (const Detection& d : detections) {
    all += d.ToString();
    all += '\n';
  }
  return BodyChecksum(reinterpret_cast<const uint8_t*>(all.data()), all.size());
}

// Runs the full Fig2 lifecycle — establish, load table, settle, explore the
// customer seed — and digests everything order-sensitive.
SimResult RunFig2(size_t sim_shards) {
  bench::Fig2Options options;
  options.prefixes = 2000;
  options.sim_shards = sim_shards;
  bench::Fig2 topo(options);
  topo.LoadTable();
  topo.Settle();

  ExplorerOptions explore;
  explore.concolic.max_runs = 40;
  Explorer explorer(explore);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  if (topo.sharded() != nullptr) {
    explorer.TakeCheckpoint(topo.provider(), *topo.sharded());
  } else {
    explorer.TakeCheckpoint(topo.provider(), topo.loop().now());
  }
  explorer.ExploreSeed(topo.CustomerSeedUpdate(), bench::Fig2::kCustomerNode);

  SimResult result;
  result.events = topo.events_executed();
  result.state_digest = topo.StateDigest();
  result.detections = explorer.report().detections.size();
  result.detections_digest = DetectionsDigest(explorer.report().detections);
  return result;
}

TEST(ShardedIdentityTest, Fig2MatchesSerialForEveryShardCount) {
  SimResult serial = RunFig2(0);
  EXPECT_GT(serial.events, 0u);
  EXPECT_GT(serial.detections, 0u) << "Fig2's erroneous filter must be detectable";
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SimResult sharded = RunFig2(shards);
    EXPECT_EQ(sharded.events, serial.events) << "shards=" << shards;
    EXPECT_EQ(sharded.state_digest, serial.state_digest) << "shards=" << shards;
    EXPECT_EQ(sharded.detections, serial.detections) << "shards=" << shards;
    EXPECT_EQ(sharded.detections_digest, serial.detections_digest) << "shards=" << shards;
  }
}

// The 256-session provider: one router peering with 256 feeds that all send
// a distinct-prefix UPDATE at the same microsecond — the stress case for the
// cross-shard merge, since every delivery lands on the provider's queue at
// the same time. Feeds are assigned to shards in contiguous id blocks so the
// merge's (source shard, sequence) order equals the serial insertion order.
SimResult RunProviderFanout(size_t feeds, size_t sim_shards) {
  EventLoop loop;
  std::unique_ptr<ShardedEventLoop> sharded;
  std::unique_ptr<net::Network> net;
  if (sim_shards > 0) {
    sharded = std::make_unique<ShardedEventLoop>(
        ShardOptions(static_cast<uint32_t>(sim_shards)));
    sharded->AssignNode(1, 0);
    for (size_t k = 0; k < feeds; ++k) {
      sharded->AssignNode(static_cast<NodeId>(2 + k),
                          static_cast<uint32_t>(k * sim_shards / feeds));
    }
    net = std::make_unique<net::Network>(sharded.get());
  } else {
    net = std::make_unique<net::Network>(&loop);
  }

  bgp::RouterConfig config;
  config.name = "provider";
  config.local_as = 3;
  config.router_id = bgp::Ipv4Address((10u << 24) | 1u);
  for (size_t k = 0; k < feeds; ++k) {
    bgp::NeighborConfig neighbor;
    neighbor.address = bgp::Ipv4Address((10u << 24) | (1u << 16) | static_cast<uint32_t>(k));
    neighbor.remote_as = static_cast<bgp::AsNumber>(1000 + k);
    config.neighbors.push_back(neighbor);
  }
  bgp::Router provider(1, std::move(config), net.get());
  net->AddNode(&provider);

  std::vector<std::unique_ptr<trace::BgpFeedNode>> feed_nodes;
  for (size_t k = 0; k < feeds; ++k) {
    bgp::Ipv4Address address((10u << 24) | (1u << 16) | static_cast<uint32_t>(k));
    auto feed = std::make_unique<trace::BgpFeedNode>(
        static_cast<NodeId>(2 + k), "feed" + std::to_string(k),
        static_cast<bgp::AsNumber>(1000 + k), address, net.get());
    feed->SetPeer(1);
    net->AddNode(feed.get());
    provider.RegisterPeerNode(address, static_cast<NodeId>(2 + k));
    feed_nodes.push_back(std::move(feed));
  }

  provider.Start();
  for (size_t k = 0; k < feeds; ++k) {
    net->Connect(1, static_cast<NodeId>(2 + k), net::kMillisecond);
  }
  auto run_for = [&](SimTime duration) {
    return sharded != nullptr ? sharded->RunFor(duration) : loop.RunFor(duration);
  };
  uint64_t events = run_for(5 * net::kSecond);
  for (size_t k = 0; k < feeds; ++k) {
    EXPECT_TRUE(provider.Established(static_cast<NodeId>(2 + k))) << "feed " << k;
  }

  // Every feed announces its own /24 at the same instant.
  SimTime t = (sharded != nullptr ? sharded->now() : loop.now()) + net::kSecond;
  for (size_t k = 0; k < feeds; ++k) {
    bgp::UpdateMessage update;
    update.attrs.origin = bgp::Origin::kIgp;
    update.attrs.as_path = bgp::AsPath::Sequence({static_cast<bgp::AsNumber>(1000 + k)});
    update.attrs.next_hop =
        bgp::Ipv4Address((10u << 24) | (1u << 16) | static_cast<uint32_t>(k));
    update.nlri.push_back(bgp::Prefix::Make(
        bgp::Ipv4Address((172u << 24) | (16u << 16) | (static_cast<uint32_t>(k) << 8)), 24));
    trace::BgpFeedNode* feed = feed_nodes[k].get();
    net->loop_for(feed->id())->At(t, [feed, update] { feed->SendUpdate(update); });
  }
  events += run_for(5 * net::kSecond);

  SimResult result;
  result.events = events;
  result.state_digest = bench::RouterStateDigest({&provider});
  return result;
}

TEST(ShardedIdentityTest, ProviderFanout256MatchesSerialForEveryShardCount) {
  SimResult serial = RunProviderFanout(256, 0);
  EXPECT_GT(serial.events, 0u);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SimResult sharded = RunProviderFanout(256, shards);
    EXPECT_EQ(sharded.events, serial.events) << "shards=" << shards;
    EXPECT_EQ(sharded.state_digest, serial.state_digest) << "shards=" << shards;
  }
}

SimResult RunScaleRing(size_t sim_shards) {
  bench::ScaleRingOptions options;
  options.ring = 8;
  options.fanout = 2;
  options.prefixes_per_leaf = 1;
  options.sim_shards = sim_shards;
  bench::ScaleRing topo(options);
  topo.Settle();
  SimResult result;
  result.events = topo.events_executed();
  result.state_digest = topo.StateDigest();
  return result;
}

TEST(ShardedIdentityTest, ScaleRingMatchesSerialForEveryShardCount) {
  SimResult serial = RunScaleRing(0);
  EXPECT_GT(serial.events, 0u);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    SimResult sharded = RunScaleRing(shards);
    EXPECT_EQ(sharded.events, serial.events) << "shards=" << shards;
    EXPECT_EQ(sharded.state_digest, serial.state_digest) << "shards=" << shards;
  }
}

// ScaleRing must actually converge: every hub should know every leaf prefix.
TEST(ScaleRingTest, ConvergesToFullVisibility) {
  bench::ScaleRingOptions options;
  options.ring = 4;
  options.fanout = 2;
  options.prefixes_per_leaf = 1;
  bench::ScaleRing topo(options);
  topo.Settle(10 * net::kSecond);
  const size_t total_prefixes = options.ring * options.fanout * options.prefixes_per_leaf;
  for (size_t i = 0; i < topo.ring(); ++i) {
    bgp::Router* hub = topo.router(topo.HubNode(i));
    EXPECT_EQ(hub->CheckpointState().rib.PrefixCount(), total_prefixes)
        << "hub " << i << " is missing prefixes";
  }
}

}  // namespace
}  // namespace dice
