// Transport bottom layer: address grammar, the blocking FrameStream, and the
// nonblocking Reactor. The reactor is driven inline (no server threads) so
// every partial-read/partial-write path is exercised deterministically: the
// test controls exactly which bytes are on the wire before each Poll.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/transport/address.h"
#include "src/transport/reactor.h"
#include "src/transport/stream.h"

namespace dice::transport {
namespace {

TEST(AddressTest, ParsesTcp) {
  StatusOr<Address> address = Address::Parse("tcp:127.0.0.1:8179");
  ASSERT_TRUE(address.ok()) << address.status();
  EXPECT_EQ(address->kind, Address::Kind::kTcp);
  EXPECT_EQ(address->host, "127.0.0.1");
  EXPECT_EQ(address->port, 8179);
  EXPECT_EQ(address->ToString(), "tcp:127.0.0.1:8179");
}

TEST(AddressTest, ParsesUnixAndShm) {
  StatusOr<Address> unix_address = Address::Parse("unix:/tmp/dice.sock");
  ASSERT_TRUE(unix_address.ok()) << unix_address.status();
  EXPECT_EQ(unix_address->kind, Address::Kind::kUnix);
  EXPECT_EQ(unix_address->path, "/tmp/dice.sock");

  StatusOr<Address> shm_address = Address::Parse("shm:/dice-ring");
  ASSERT_TRUE(shm_address.ok()) << shm_address.status();
  EXPECT_EQ(shm_address->kind, Address::Kind::kShm);
  EXPECT_EQ(shm_address->path, "/dice-ring");
}

TEST(AddressTest, RejectsMalformed) {
  const char* bad[] = {
      "",
      "tcp:",
      "tcp:127.0.0.1",           // no port
      "tcp:127.0.0.1:",          // empty port
      "tcp::443",                // empty host
      "tcp:127.0.0.1:99999",     // port out of range
      "tcp:127.0.0.1:http",      // non-numeric port
      "unix:",                   // empty path
      "shm:",                    // empty name
      "shm:noslash",             // must start with '/'
      "shm:/a/b",                // no second '/'
      "http:example.com:80",     // unknown scheme
      "/plain/path",             // not an address at all
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Address::Parse(text).ok()) << "'" << text << "' parsed";
  }
}

TEST(AddressTest, LooksLikeAddressDiscriminatesConfigs) {
  EXPECT_TRUE(LooksLikeAddress("tcp:127.0.0.1:1"));
  EXPECT_TRUE(LooksLikeAddress("unix:/run/dice.sock"));
  EXPECT_TRUE(LooksLikeAddress("shm:/ring"));
  EXPECT_FALSE(LooksLikeAddress("tools/testdata/provider.conf"));
  EXPECT_FALSE(LooksLikeAddress("/abs/path/to.conf"));
}

// --- Reactor + FrameStream over a real socket pair ---------------------------

class ReactorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reactor_.set_handlers(Reactor::Handlers{
        [this](Reactor::ConnId conn) { accepted_.push_back(conn); },
        [this](Reactor::ConnId conn, Bytes frame) {
          frames_.emplace_back(conn, std::move(frame));
        },
        [this](Reactor::ConnId conn, const Status& why) {
          closes_.emplace_back(conn, why);
        },
    });
    StatusOr<Reactor::ConnId> listener =
        reactor_.Listen(*Address::Parse("tcp:127.0.0.1:0"));
    ASSERT_TRUE(listener.ok()) << listener.status();
    StatusOr<Address> bound = reactor_.ListenerAddress(*listener);
    ASSERT_TRUE(bound.ok()) << bound.status();
    ASSERT_GT(bound->port, 0);
    bound_ = *bound;
  }

  // Polls until the predicate holds (bounded; each Poll waits up to 50 ms).
  template <typename Pred>
  bool PollUntil(Pred pred) {
    for (int i = 0; i < 200 && !pred(); ++i) {
      StatusOr<int> polled = reactor_.Poll(50);
      EXPECT_TRUE(polled.ok()) << polled.status();
    }
    return pred();
  }

  FrameStream DialClient() {
    StatusOr<FrameStream> stream = FrameStream::Dial(bound_, 2000);
    EXPECT_TRUE(stream.ok()) << stream.status();
    return stream.ok() ? std::move(stream).value() : FrameStream();
  }

  Reactor reactor_;
  Address bound_;
  std::vector<Reactor::ConnId> accepted_;
  std::vector<std::pair<Reactor::ConnId, Bytes>> frames_;
  std::vector<std::pair<Reactor::ConnId, Status>> closes_;
};

TEST_F(ReactorFixture, AcceptsAndReceivesWholeFrames) {
  FrameStream client = DialClient();
  Bytes payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(client.SendFrame(payload).ok());
  ASSERT_TRUE(PollUntil([&] { return frames_.size() == 1; }));
  EXPECT_EQ(accepted_.size(), 1u);
  EXPECT_EQ(frames_[0].second, payload);
  EXPECT_EQ(reactor_.frames_received(), 1u);
}

TEST_F(ReactorFixture, ReassemblesFramesFromSingleByteWrites) {
  FrameStream client = DialClient();
  Bytes payload = {10, 20, 30, 40, 50, 60, 70};
  Bytes wire;
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(static_cast<uint8_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  for (uint8_t byte : wire) {
    ASSERT_TRUE(client.SendRaw(&byte, 1).ok());
    // Poll between every byte: the reactor must buffer the partial frame.
    StatusOr<int> polled = reactor_.Poll(10);
    ASSERT_TRUE(polled.ok()) << polled.status();
  }
  ASSERT_TRUE(PollUntil([&] { return frames_.size() == 1; }));
  EXPECT_EQ(frames_[0].second, payload);
}

TEST_F(ReactorFixture, SplitsManyFramesFromOneWrite) {
  FrameStream client = DialClient();
  Bytes wire;
  const int kFrames = 17;
  for (int i = 0; i < kFrames; ++i) {
    Bytes payload(static_cast<size_t>(i % 5), static_cast<uint8_t>(i));
    wire.push_back(0);
    wire.push_back(0);
    wire.push_back(0);
    wire.push_back(static_cast<uint8_t>(payload.size()));
    wire.insert(wire.end(), payload.begin(), payload.end());
  }
  ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());
  ASSERT_TRUE(PollUntil([&] { return frames_.size() == kFrames; }));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(frames_[static_cast<size_t>(i)].second.size(),
              static_cast<size_t>(i % 5));
  }
}

TEST_F(ReactorFixture, CleanEofBetweenFramesIsOkClose) {
  FrameStream client = DialClient();
  ASSERT_TRUE(client.SendFrame({1, 2, 3}).ok());
  ASSERT_TRUE(PollUntil([&] { return frames_.size() == 1; }));
  client.Close();
  ASSERT_TRUE(PollUntil([&] { return closes_.size() == 1; }));
  EXPECT_TRUE(closes_[0].second.ok()) << closes_[0].second;
}

TEST_F(ReactorFixture, EofMidFrameIsFailedPrecondition) {
  FrameStream client = DialClient();
  uint8_t torn[] = {0, 0, 0, 9, 1, 2};  // announces 9 bytes, delivers 2
  ASSERT_TRUE(client.SendRaw(torn, sizeof(torn)).ok());
  client.Close();
  ASSERT_TRUE(PollUntil([&] { return closes_.size() == 1; }));
  EXPECT_EQ(closes_[0].second.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(frames_.empty());
}

TEST_F(ReactorFixture, OversizeFramePrefixClosesTheConnection) {
  FrameStream client = DialClient();
  uint8_t huge[] = {0xFF, 0xFF, 0xFF, 0xFF};  // 4 GiB announcement
  ASSERT_TRUE(client.SendRaw(huge, sizeof(huge)).ok());
  ASSERT_TRUE(PollUntil([&] { return closes_.size() == 1; }));
  EXPECT_EQ(closes_[0].second.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reactor_.malformed_closes(), 1u);
  EXPECT_EQ(reactor_.connection_count(), 1u);  // only the listener remains
}

TEST_F(ReactorFixture, EchoRoundTripThroughSendQueue) {
  // Echo server: every received frame goes straight back out.
  reactor_.set_handlers(Reactor::Handlers{
      nullptr,
      [this](Reactor::ConnId conn, Bytes frame) {
        Status sent = reactor_.Send(conn, frame);
        EXPECT_TRUE(sent.ok()) << sent;
        frames_.emplace_back(conn, std::move(frame));
      },
      nullptr,
  });
  FrameStream client = DialClient();
  for (int round = 0; round < 5; ++round) {
    Bytes payload(static_cast<size_t>(100 + round), static_cast<uint8_t>(round));
    ASSERT_TRUE(client.SendFrame(payload).ok());
    ASSERT_TRUE(PollUntil([&] { return frames_.size() == static_cast<size_t>(round + 1); }));
    StatusOr<Bytes> echoed = client.RecvFrame(2000);
    ASSERT_TRUE(echoed.ok()) << echoed.status();
    EXPECT_EQ(*echoed, payload);
  }
  EXPECT_EQ(reactor_.frames_sent(), 5u);
}

TEST_F(ReactorFixture, BackpressureSurfacesAsResourceExhausted) {
  Reactor::Options tight;
  tight.max_write_queue_bytes = 1024;
  Reactor small(tight);
  small.set_handlers(Reactor::Handlers{});
  StatusOr<Reactor::ConnId> listener = small.Listen(*Address::Parse("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status();
  Address bound = *small.ListenerAddress(*listener);
  FrameStream client = FrameStream();
  {
    StatusOr<FrameStream> dialed = FrameStream::Dial(bound, 2000);
    ASSERT_TRUE(dialed.ok()) << dialed.status();
    client = std::move(dialed).value();
  }
  // Accept the connection.
  for (int i = 0; i < 100 && small.connection_count() < 2; ++i) {
    ASSERT_TRUE(small.Poll(50).ok());
  }
  ASSERT_EQ(small.connection_count(), 2u);
  Reactor::ConnId conn = 0;
  // The peer (client) never reads; pushing frames must eventually hit the
  // queue cap and report ResourceExhausted instead of buffering forever.
  bool exhausted = false;
  for (int i = 0; i < 100000 && !exhausted; ++i) {
    // Find the accepted conn id: it is the only non-listener.
    if (conn == 0) {
      conn = *listener == 1 ? 2 : 1;
    }
    Status sent = small.Send(conn, Bytes(512, 0xAB));
    if (!sent.ok()) {
      EXPECT_EQ(sent.code(), StatusCode::kResourceExhausted);
      exhausted = true;
    }
  }
  EXPECT_TRUE(exhausted);
  EXPECT_GT(small.backpressure_rejects(), 0u);
}

TEST_F(ReactorFixture, ListenOnUnixSocketWorks) {
  const std::string path = testing::TempDir() + "dice_reactor_test.sock";
  StatusOr<Address> address = Address::Parse("unix:" + path);
  ASSERT_TRUE(address.ok()) << address.status();
  StatusOr<Reactor::ConnId> listener = reactor_.Listen(*address);
  ASSERT_TRUE(listener.ok()) << listener.status();
  StatusOr<FrameStream> client = FrameStream::Dial(*address, 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->SendFrame({9, 9, 9}).ok());
  ASSERT_TRUE(PollUntil([&] { return frames_.size() == 1; }));
  EXPECT_EQ(frames_[0].second, (Bytes{9, 9, 9}));
}

TEST(FrameStreamTest, DialRefusedIsStatusNotCrash) {
  // Nothing listens on this port (bound and immediately released below 1024
  // is not portable; use a listener-less high port).
  StatusOr<FrameStream> stream = FrameStream::Dial(*Address::Parse("tcp:127.0.0.1:1"), 300);
  EXPECT_FALSE(stream.ok());
}

TEST(FrameStreamTest, RecvTimeoutIsDeadlineExceeded) {
  Reactor reactor;
  reactor.set_handlers(Reactor::Handlers{});
  StatusOr<Reactor::ConnId> listener = reactor.Listen(*Address::Parse("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status();
  StatusOr<FrameStream> client = FrameStream::Dial(*reactor.ListenerAddress(*listener), 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  StatusOr<Bytes> frame = client->RecvFrame(100);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace dice::transport
