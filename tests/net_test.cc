// Tests for the discrete-event loop and the simulated network, including the
// interception (tap) mechanism DiCE's isolation depends on.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/network.h"

namespace dice::net {
namespace {

TEST(EventLoopTest, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.At(30, [&] { order.push_back(3); });
  loop.At(10, [&] { order.push_back(1); });
  loop.At(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoopTest, FifoAmongSameTime) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.At(5, [&, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventLoopTest, AfterIsRelative) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.At(100, [&] { loop.After(50, [&] { fired_at = loop.now(); }); });
  loop.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.At(10, [&] { ++fired; });
  loop.At(20, [&] { ++fired; });
  loop.At(30, [&] { ++fired; });
  loop.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20u);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, RunUntilAdvancesTimeWhenIdle) {
  EventLoop loop;
  loop.RunUntil(500);
  EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoopTest, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.At(1, [&] {
    ++fired;
    loop.Stop();
  });
  loop.At(2, [&] { ++fired; });
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, StopFromInsideCallbackUnderRunUntil) {
  EventLoop loop;
  std::vector<int> fired;
  loop.At(10, [&] {
    fired.push_back(1);
    loop.Stop();
  });
  loop.At(20, [&] { fired.push_back(2); });
  loop.RunUntil(100);
  // The stop freezes the clock at the stopping event; the later event stays
  // queued and the deadline is NOT applied to now().
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(loop.now(), 10u);
  EXPECT_EQ(loop.pending(), 1u);
  // A fresh RunUntil clears the stop flag and resumes.
  loop.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 100u);
}

TEST(EventLoopTest, RunUntilAdvancesNowPastDrainedQueue) {
  EventLoop loop;
  int fired = 0;
  loop.At(10, [&] { ++fired; });
  // The queue drains at t=10, but the clock must still reach the deadline.
  loop.RunUntil(300);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 300u);
  EXPECT_TRUE(loop.empty());
  // And again from an already-drained queue.
  loop.RunUntil(400);
  EXPECT_EQ(loop.now(), 400u);
}

TEST(EventLoopTest, SameTimeFifoAcrossAtAfterInterleavings) {
  EventLoop loop;
  std::vector<int> order;
  // Four routes to the same timestamp: absolute, relative, and two scheduled
  // from inside an earlier callback. Insertion order must be execution order.
  loop.At(5, [&] { order.push_back(0); });
  loop.After(5, [&] { order.push_back(1); });  // now()==0, so also t=5
  loop.At(0, [&] {
    loop.At(5, [&] { order.push_back(2); });
    loop.After(5, [&] { order.push_back(3); });  // now()==0 inside the callback
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.now(), 5u);
}

// Counts copies of the callable's captured state — the regression guard for
// Step() deep-copying each event (std::function and payload) off the heap
// top instead of moving it out.
struct CopyCountingCallable {
  explicit CopyCountingCallable(std::shared_ptr<int> counter)
      : copies(std::move(counter)) {}
  CopyCountingCallable(const CopyCountingCallable& other) : copies(other.copies) {
    ++*copies;
  }
  CopyCountingCallable(CopyCountingCallable&&) noexcept = default;
  void operator()() const {}

  std::shared_ptr<int> copies;
};

TEST(EventLoopTest, DispatchMovesEventsInsteadOfCopying) {
  auto copies = std::make_shared<int>(0);
  EventLoop loop;
  for (int i = 0; i < 16; ++i) {
    loop.At(static_cast<SimTime>(i), EventLoop::Callback(CopyCountingCallable(copies)));
  }
  const int after_scheduling = *copies;
  loop.Run();
  // Dispatch must move the event out of the queue — zero additional copies.
  EXPECT_EQ(*copies, after_scheduling);
}

TEST(EventLoopTest, StepExecutesOne) {
  EventLoop loop;
  int fired = 0;
  loop.At(1, [&] { ++fired; });
  loop.At(2, [&] { ++fired; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
}

// A node that records everything it receives.
class SinkNode : public Node {
 public:
  SinkNode(NodeId id, std::string name) : Node(id, std::move(name)) {}

  void OnMessage(NodeId from, const Bytes& bytes) override {
    received.push_back({from, bytes});
  }
  void OnLinkUp(NodeId peer) override { link_ups.push_back(peer); }
  void OnLinkDown(NodeId peer) override { link_downs.push_back(peer); }

  std::vector<std::pair<NodeId, Bytes>> received;
  std::vector<NodeId> link_ups;
  std::vector<NodeId> link_downs;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&loop_), a_(1, "a"), b_(2, "b") {
    net_.AddNode(&a_);
    net_.AddNode(&b_);
    net_.Connect(1, 2, 10 * kMillisecond);
  }

  EventLoop loop_;
  Network net_;
  SinkNode a_;
  SinkNode b_;
};

TEST_F(NetworkTest, ConnectNotifiesBothEndpoints) {
  EXPECT_EQ(a_.link_ups, (std::vector<NodeId>{2}));
  EXPECT_EQ(b_.link_ups, (std::vector<NodeId>{1}));
}

TEST_F(NetworkTest, DeliversAfterDelay) {
  ASSERT_TRUE(net_.Send(1, 2, Bytes{42}));
  EXPECT_TRUE(b_.received.empty());
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].first, 1u);
  EXPECT_EQ(b_.received[0].second, Bytes{42});
  EXPECT_EQ(loop_.now(), 10 * kMillisecond);
}

TEST_F(NetworkTest, PreservesOrderPerChannel) {
  for (uint8_t i = 0; i < 10; ++i) {
    net_.Send(1, 2, Bytes{i});
  }
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 10u);
  for (uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b_.received[i].second, Bytes{i});
  }
}

TEST_F(NetworkTest, SendWithoutChannelFails) {
  SinkNode c(3, "c");
  net_.AddNode(&c);
  EXPECT_FALSE(net_.Send(1, 3, Bytes{1}));
}

TEST_F(NetworkTest, TapDivertsFromReceiver) {
  RecordingTap tap;
  net_.GetChannel(1, 2)->set_tap(&tap);
  net_.Send(1, 2, Bytes{7});
  loop_.Run();
  EXPECT_TRUE(b_.received.empty()) << "tapped message must not reach the receiver";
  ASSERT_EQ(tap.count(), 1u);
  EXPECT_EQ(tap.entries()[0].from, 1u);
  EXPECT_EQ(tap.entries()[0].to, 2u);
  EXPECT_EQ(tap.entries()[0].bytes, Bytes{7});
  // Other direction unaffected.
  net_.Send(2, 1, Bytes{8});
  loop_.Run();
  EXPECT_EQ(a_.received.size(), 1u);
}

TEST_F(NetworkTest, DropFilterDiscards) {
  net_.GetChannel(1, 2)->set_drop_filter([](const Bytes& b) { return b[0] % 2 == 0; });
  for (uint8_t i = 0; i < 6; ++i) {
    net_.Send(1, 2, Bytes{i});
  }
  loop_.Run();
  ASSERT_EQ(b_.received.size(), 3u);
  EXPECT_EQ(net_.GetChannel(1, 2)->dropped_count(), 3u);
}

TEST_F(NetworkTest, DisconnectStopsTrafficAndNotifies) {
  net_.Disconnect(1, 2);
  EXPECT_EQ(a_.link_downs, (std::vector<NodeId>{2}));
  EXPECT_EQ(b_.link_downs, (std::vector<NodeId>{1}));
  net_.Send(1, 2, Bytes{1});
  loop_.Run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetworkTest, ChannelCounters) {
  net_.Send(1, 2, Bytes{1});
  net_.Send(1, 2, Bytes{2});
  loop_.Run();
  Channel* ch = net_.GetChannel(1, 2);
  EXPECT_EQ(ch->sent_count(), 2u);
  EXPECT_EQ(ch->delivered_count(), 2u);
  EXPECT_EQ(ch->dropped_count(), 0u);
}

}  // namespace
}  // namespace dice::net
