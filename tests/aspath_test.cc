// Tests for the AS_PATH attribute.

#include <gtest/gtest.h>

#include "src/bgp/aspath.h"

namespace dice::bgp {
namespace {

TEST(AsPathTest, SequenceBasics) {
  AsPath p = AsPath::Sequence({100, 200, 300});
  EXPECT_EQ(p.FirstAs(), 100u);
  EXPECT_EQ(p.OriginAs(), 300u);
  EXPECT_EQ(p.EffectiveLength(), 3u);
  EXPECT_TRUE(p.Contains(200));
  EXPECT_FALSE(p.Contains(400));
  EXPECT_EQ(p.ToString(), "100 200 300");
}

TEST(AsPathTest, EmptyPath) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.OriginAs(), 0u);
  EXPECT_EQ(p.FirstAs(), 0u);
  EXPECT_EQ(p.EffectiveLength(), 0u);
  EXPECT_FALSE(p.Contains(1));
  EXPECT_EQ(p.ToString(), "");
}

TEST(AsPathTest, SequenceFromEmptyVectorIsEmpty) {
  AsPath p = AsPath::Sequence({});
  EXPECT_TRUE(p.empty());
}

TEST(AsPathTest, PrependExtendsFrontSequence) {
  AsPath p = AsPath::Sequence({200, 300});
  p.Prepend(100);
  EXPECT_EQ(p.ToString(), "100 200 300");
  EXPECT_EQ(p.segments().size(), 1u);
}

TEST(AsPathTest, PrependOntoEmptyCreatesSequence) {
  AsPath p;
  p.Prepend(64512);
  EXPECT_EQ(p.ToString(), "64512");
  EXPECT_EQ(p.OriginAs(), 64512u);
}

TEST(AsPathTest, PrependBeforeSetCreatesNewSegment) {
  AsPath p(std::vector<AsSegment>{AsSegment{AsSegmentType::kAsSet, {10, 20}}});
  p.Prepend(5);
  ASSERT_EQ(p.segments().size(), 2u);
  EXPECT_EQ(p.segments()[0].type, AsSegmentType::kAsSequence);
  EXPECT_EQ(p.ToString(), "5 {10,20}");
}

TEST(AsPathTest, AsSetCountsAsOneInEffectiveLength) {
  AsPath p(std::vector<AsSegment>{AsSegment{AsSegmentType::kAsSequence, {1, 2}},
                                  AsSegment{AsSegmentType::kAsSet, {7, 8, 9}}});
  EXPECT_EQ(p.EffectiveLength(), 3u);  // 2 + 1
}

TEST(AsPathTest, OriginOfSetTerminatedPathIsUnknown) {
  AsPath p(std::vector<AsSegment>{AsSegment{AsSegmentType::kAsSequence, {1}},
                                  AsSegment{AsSegmentType::kAsSet, {7, 8}}});
  EXPECT_EQ(p.OriginAs(), 0u);
}

TEST(AsPathTest, ContainsLooksInsideSets) {
  AsPath p(std::vector<AsSegment>{AsSegment{AsSegmentType::kAsSet, {7, 8}}});
  EXPECT_TRUE(p.Contains(8));
  EXPECT_FALSE(p.Contains(9));
}

TEST(AsPathTest, FlattenPreservesOrder) {
  AsPath p(std::vector<AsSegment>{AsSegment{AsSegmentType::kAsSequence, {1, 2}},
                                  AsSegment{AsSegmentType::kAsSet, {3, 4}}});
  EXPECT_EQ(p.Flatten(), (std::vector<AsNumber>{1, 2, 3, 4}));
}

TEST(AsPathTest, EqualityIsStructural) {
  EXPECT_EQ(AsPath::Sequence({1, 2}), AsPath::Sequence({1, 2}));
  EXPECT_NE(AsPath::Sequence({1, 2}), AsPath::Sequence({2, 1}));
}

class AsPathPrependSweep : public ::testing::TestWithParam<int> {};

TEST_P(AsPathPrependSweep, RepeatedPrependGrowsLength) {
  int n = GetParam();
  AsPath p = AsPath::Sequence({65001});
  for (int i = 0; i < n; ++i) {
    p.Prepend(65000);
  }
  EXPECT_EQ(p.EffectiveLength(), static_cast<size_t>(n) + 1);
  EXPECT_EQ(p.OriginAs(), 65001u);
  EXPECT_EQ(p.FirstAs(), n > 0 ? 65000u : 65001u);
}

INSTANTIATE_TEST_SUITE_P(Counts, AsPathPrependSweep, ::testing::Values(0, 1, 2, 5, 16));

}  // namespace
}  // namespace dice::bgp
