// Tests for the copy-on-write Patricia trie: reference-model property tests,
// snapshot isolation, longest-prefix match, and sharing statistics.

#include <gtest/gtest.h>

#include <map>

#include "src/bgp/prefix_trie.h"
#include "src/util/rng.h"

namespace dice::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::Parse(s); }

TEST(PrefixTrieTest, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.Insert(P("10.1.0.0/16"), 2));
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.Find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.Find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.Find(P("10.2.0.0/16")), nullptr);
  EXPECT_TRUE(trie.Erase(P("10.0.0.0/8")));
  EXPECT_EQ(trie.Find(P("10.0.0.0/8")), nullptr);
  EXPECT_FALSE(trie.Erase(P("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrieTest, InsertOverwrites) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(P("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.Insert(P("10.0.0.0/8"), 9));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 9);
}

TEST(PrefixTrieTest, DistinguishesLengthsOnSameAddress) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 8);
  trie.Insert(P("10.0.0.0/16"), 16);
  trie.Insert(P("10.0.0.0/24"), 24);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/16")), 16);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/24")), 24);
  EXPECT_EQ(trie.Find(P("10.0.0.0/12")), nullptr);
}

TEST(PrefixTrieTest, DefaultRouteAndHostRoutes) {
  PrefixTrie<int> trie;
  trie.Insert(P("0.0.0.0/0"), 0);
  trie.Insert(P("255.255.255.255/32"), 32);
  trie.Insert(P("0.0.0.0/32"), 1);
  EXPECT_EQ(*trie.Find(P("0.0.0.0/0")), 0);
  EXPECT_EQ(*trie.Find(P("255.255.255.255/32")), 32);
  EXPECT_EQ(*trie.Find(P("0.0.0.0/32")), 1);
}

TEST(PrefixTrieTest, LongestMatchPicksMostSpecific) {
  PrefixTrie<int> trie;
  trie.Insert(P("0.0.0.0/0"), 0);
  trie.Insert(P("10.0.0.0/8"), 8);
  trie.Insert(P("10.1.0.0/16"), 16);
  trie.Insert(P("10.1.2.0/24"), 24);

  auto m = trie.LongestMatch(*Ipv4Address::Parse("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("10.1.2.0/24"));

  m = trie.LongestMatch(*Ipv4Address::Parse("10.1.9.9"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("10.1.0.0/16"));

  m = trie.LongestMatch(*Ipv4Address::Parse("10.9.9.9"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("10.0.0.0/8"));

  m = trie.LongestMatch(*Ipv4Address::Parse("192.0.2.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("0.0.0.0/0"));
}

TEST(PrefixTrieTest, LongestMatchWithoutDefaultCanMiss) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 8);
  EXPECT_FALSE(trie.LongestMatch(*Ipv4Address::Parse("192.0.2.1")).has_value());
}

TEST(PrefixTrieTest, WalkIsInPrefixOrder) {
  PrefixTrie<int> trie;
  trie.Insert(P("192.0.2.0/24"), 3);
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.1.0.0/16"), 2);
  std::vector<Prefix> seen;
  trie.Walk([&](const Prefix& p, const int&) {
    seen.push_back(p);
    return true;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], P("10.0.0.0/8"));
  EXPECT_EQ(seen[1], P("10.1.0.0/16"));
  EXPECT_EQ(seen[2], P("192.0.2.0/24"));
}

TEST(PrefixTrieTest, WalkEarlyStop) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("11.0.0.0/8"), 2);
  int count = 0;
  trie.Walk([&](const Prefix&, const int&) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

TEST(PrefixTrieTest, WalkCovered) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.1.0.0/16"), 2);
  trie.Insert(P("10.1.2.0/24"), 3);
  trie.Insert(P("11.0.0.0/8"), 4);
  std::vector<int> seen;
  trie.WalkCovered(P("10.1.0.0/16"), [&](const Prefix&, const int& v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{2, 3}));
}

TEST(PrefixTrieTest, FindMutable) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  int* v = trie.FindMutable(P("10.0.0.0/8"));
  ASSERT_NE(v, nullptr);
  *v = 99;
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 99);
  EXPECT_EQ(trie.FindMutable(P("12.0.0.0/8")), nullptr);
}

// --- snapshot isolation (the checkpoint property) ------------------------------

TEST(PrefixTrieSnapshotTest, SnapshotUnaffectedByLaterInserts) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  PrefixTrie<int> snap = trie;
  trie.Insert(P("11.0.0.0/8"), 2);
  trie.Insert(P("10.0.0.0/8"), 100);
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(*snap.Find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(snap.Find(P("11.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 100);
}

TEST(PrefixTrieSnapshotTest, SnapshotUnaffectedByErase) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  trie.Insert(P("10.1.0.0/16"), 2);
  PrefixTrie<int> snap = trie;
  trie.Erase(P("10.1.0.0/16"));
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_NE(snap.Find(P("10.1.0.0/16")), nullptr);
}

TEST(PrefixTrieSnapshotTest, FindMutableDoesNotLeakIntoSnapshot) {
  PrefixTrie<int> trie;
  trie.Insert(P("10.0.0.0/8"), 1);
  PrefixTrie<int> snap = trie;
  *trie.FindMutable(P("10.0.0.0/8")) = 7;
  EXPECT_EQ(*snap.Find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.Find(P("10.0.0.0/8")), 7);
}

TEST(PrefixTrieSnapshotTest, ManySnapshotsShareNodes) {
  PrefixTrie<int> trie;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    trie.Insert(Prefix::Make(Ipv4Address(rng.NextU32()), 24), i);
  }
  PrefixTrie<int> snap = trie;
  auto stats = snap.SharingWith(trie);
  EXPECT_EQ(stats.unique_nodes, 0u);
  EXPECT_EQ(stats.shared_nodes, stats.total_nodes);

  // One write to the snapshot dirties only a root path, not the whole trie.
  snap.Insert(P("10.0.0.0/8"), 1);
  stats = snap.SharingWith(trie);
  EXPECT_GT(stats.shared_nodes, stats.total_nodes / 2);
  EXPECT_GT(stats.unique_nodes, 0u);
  EXPECT_LT(stats.unique_nodes, 40u);
}

// --- reference-model property test ---------------------------------------------

class TrieVsMapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieVsMapProperty, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  PrefixTrie<uint32_t> trie;
  std::map<Prefix, uint32_t> model;

  for (int op = 0; op < 4000; ++op) {
    // Small address pool to force collisions, nesting and deletions.
    uint32_t addr = static_cast<uint32_t>(rng.NextBelow(64)) << 24 |
                    static_cast<uint32_t>(rng.NextBelow(4)) << 16;
    uint8_t len = static_cast<uint8_t>(rng.NextBelow(33));
    Prefix p = Prefix::Make(Ipv4Address(addr), len);
    uint32_t val = rng.NextU32();

    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // insert
        bool added_model = model.emplace(p, val).second;
        if (!added_model) {
          model[p] = val;
        }
        bool added_trie = trie.Insert(p, val);
        EXPECT_EQ(added_trie, added_model);
        break;
      }
      case 2: {  // erase
        bool erased_model = model.erase(p) > 0;
        bool erased_trie = trie.Erase(p);
        EXPECT_EQ(erased_trie, erased_model);
        break;
      }
      case 3: {  // lookup
        const uint32_t* found = trie.Find(p);
        auto it = model.find(p);
        if (it == model.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    EXPECT_EQ(trie.size(), model.size());
  }

  // Full-content check including iteration order.
  std::vector<std::pair<Prefix, uint32_t>> walked;
  trie.Walk([&](const Prefix& p, const uint32_t& v) {
    walked.push_back({p, v});
    return true;
  });
  ASSERT_EQ(walked.size(), model.size());
  size_t i = 0;
  for (const auto& [p, v] : model) {
    EXPECT_EQ(walked[i].first, p);
    EXPECT_EQ(walked[i].second, v);
    ++i;
  }

  // Longest-match agrees with a brute-force scan for random addresses.
  for (int q = 0; q < 200; ++q) {
    Ipv4Address addr(static_cast<uint32_t>(rng.NextBelow(64)) << 24 |
                     static_cast<uint32_t>(rng.NextBelow(4)) << 16 | rng.NextU32() % 0xffff);
    std::optional<Prefix> best;
    for (const auto& [p, v] : model) {
      if (p.Contains(addr) && (!best.has_value() || p.length() > best->length())) {
        best = p;
      }
    }
    auto m = trie.LongestMatch(addr);
    if (best.has_value()) {
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->first, *best);
    } else {
      EXPECT_FALSE(m.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsMapProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dice::bgp
