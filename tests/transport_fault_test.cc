// Fault injection under the RPC channel: short writes, torn writes, bit
// flips, and mid-batch disconnects must surface as clean Statuses (or be
// healed by the channel's reconnect) — never a crash, a hang, or a wrong
// verdict. The server must drop damaged connections and keep serving.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/transport/client.h"
#include "src/transport/fault.h"
#include "src/transport/server.h"
#include "tests/transport_test_util.h"

namespace dice::transport {
namespace {

// One FakeService domain behind a loopback TCP endpoint.
struct FaultHarness {
  FaultHarness() {
    server = std::make_unique<ExplorationServer>();
    auto owned = std::make_unique<FakeService>("upstream");
    fake = owned.get();
    server->AddDomain(std::move(owned));
    EXPECT_TRUE(server->AddEndpoint(LoopbackAddress()).ok());
    EXPECT_TRUE(server->Start().ok());
    bound = *server->BoundAddress(0);
  }

  // A channel whose every connection is wrapped in a FaultInjectingTransport.
  std::shared_ptr<RpcChannel> Channel(FaultSpec spec, int call_timeout_ms = 10000) {
    RpcChannel::Options options;
    options.connect_timeout_ms = 2000;
    options.call_timeout_ms = call_timeout_ms;
    options.reconnect_attempts = 3;
    options.reconnect_backoff_ms = 2;
    options.dialer = FaultyDialer(spec);
    return std::make_shared<RpcChannel>(bound, options);
  }

  // The reply a clean (fault-free) channel produces for the same batch —
  // the reference verdict every faulty run must reproduce exactly. The fake
  // stamps would_propagate with the answering epoch, which advances once per
  // stub, so the shape is identical across stubs.
  ExploratoryBatchReply CleanReference() {
    auto channel = Channel(FaultSpec{});
    SocketExplorationService stub(channel, 1, "upstream");
    EXPECT_GT(stub.TakeCheckpoint(3), 0u);
    StatusOr<ExploratoryBatchReply> reply =
        stub.ExecuteBatch(TestBatch(stub.public_epoch(), {"203.0.113.0/24", "192.0.2.0/24"}));
    EXPECT_TRUE(reply.ok()) << reply.status();
    ExploratoryBatchReply normalized = reply.ok() ? *reply : ExploratoryBatchReply{};
    Normalize(normalized);
    return normalized;
  }

  // The fake encodes the server-side epoch into would_propagate and the stub
  // remaps checkpoint_epoch into its public space; zero both so replies from
  // different checkpoints (fresh stubs, retried connections) compare equal.
  static void Normalize(ExploratoryBatchReply& reply) {
    reply.checkpoint_epoch = 0;
    for (NarrowReply& narrow : reply.replies) {
      narrow.would_propagate = 0;
    }
  }

  std::unique_ptr<ExplorationServer> server;
  FakeService* fake = nullptr;
  Address bound;
};

// Wire frame numbering per connection: 0 = Hello, 1 = first call (the
// checkpoint below), 2 = the batch.
constexpr size_t kBatchFrame = 2;

TEST(FaultTest, SingleByteChunkedWritesRoundTrip) {
  FaultHarness harness;
  ExploratoryBatchReply reference = harness.CleanReference();

  FaultSpec spec;
  spec.chunk_bytes = 1;  // every frame arrives one byte at a time
  auto channel = harness.Channel(spec);
  SocketExplorationService stub(channel, 1, "upstream");
  ASSERT_GT(stub.TakeCheckpoint(3), 0u);
  StatusOr<ExploratoryBatchReply> reply = stub.ExecuteBatch(
      TestBatch(stub.public_epoch(), {"203.0.113.0/24", "192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  FaultHarness::Normalize(*reply);
  EXPECT_EQ(*reply, reference);
  EXPECT_EQ(channel->reconnects(), 0u) << "chunking is a stress, not a fault";
}

TEST(FaultTest, TornBatchWriteIsHealedByReconnect) {
  FaultHarness harness;
  ExploratoryBatchReply reference = harness.CleanReference();

  // Tear the batch frame at several prefix lengths: inside the stream's
  // length prefix, on its boundary, and mid-payload.
  for (size_t torn_prefix : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{17}}) {
    SCOPED_TRACE(torn_prefix);
    FaultSpec spec;
    spec.torn_frame = kBatchFrame;
    spec.torn_prefix_bytes = torn_prefix;
    auto channel = harness.Channel(spec);
    SocketExplorationService stub(channel, 1, "upstream");
    ASSERT_GT(stub.TakeCheckpoint(3), 0u);
    // The torn write kills the first connection mid-frame; the retry rides a
    // fresh connection where the batch is wire frame 1 — below the fault.
    StatusOr<ExploratoryBatchReply> reply = stub.ExecuteBatch(
        TestBatch(stub.public_epoch(), {"203.0.113.0/24", "192.0.2.0/24"}));
    ASSERT_TRUE(reply.ok()) << reply.status();
    FaultHarness::Normalize(*reply);
    EXPECT_EQ(*reply, reference) << "a torn write changed the verdict";
    EXPECT_EQ(channel->reconnects(), 1u);
  }
}

TEST(FaultTest, BitFlipsAreCaughtBelowEveryChecksum) {
  FaultHarness harness;
  ExploratoryBatchReply reference = harness.CleanReference();

  // Bit 7 lands in the stream's length prefix (MSB byte — the frame claims
  // to be gigantic and the server closes); bits past 32 land in the framed
  // envelope, where the checksum catches them and the server drops the
  // connection without answering.
  for (size_t flip_bit : {size_t{7}, size_t{33}, size_t{200}}) {
    SCOPED_TRACE(flip_bit);
    FaultSpec spec;
    spec.flip_frame = kBatchFrame;
    spec.flip_bit = flip_bit;
    auto channel = harness.Channel(spec);
    SocketExplorationService stub(channel, 1, "upstream");
    ASSERT_GT(stub.TakeCheckpoint(3), 0u);
    StatusOr<ExploratoryBatchReply> reply = stub.ExecuteBatch(
        TestBatch(stub.public_epoch(), {"203.0.113.0/24", "192.0.2.0/24"}));
    ASSERT_TRUE(reply.ok()) << reply.status();
    FaultHarness::Normalize(*reply);
    EXPECT_EQ(*reply, reference) << "a flipped bit changed the verdict";
    EXPECT_EQ(channel->reconnects(), 1u);
  }
}

TEST(FaultTest, DisconnectInsteadOfBatchReconnectsAndRetries) {
  FaultHarness harness;
  ExploratoryBatchReply reference = harness.CleanReference();

  FaultSpec spec;
  spec.drop_frame = kBatchFrame;
  auto channel = harness.Channel(spec);
  SocketExplorationService stub(channel, 1, "upstream");
  ASSERT_GT(stub.TakeCheckpoint(3), 0u);
  const uint64_t batches_before = harness.fake->batches();
  StatusOr<ExploratoryBatchReply> reply = stub.ExecuteBatch(
      TestBatch(stub.public_epoch(), {"203.0.113.0/24", "192.0.2.0/24"}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  FaultHarness::Normalize(*reply);
  EXPECT_EQ(*reply, reference);
  EXPECT_EQ(channel->reconnects(), 1u);
  // The dropped request never reached the service: exactly one batch ran.
  EXPECT_EQ(harness.fake->batches(), batches_before + 1);
}

TEST(FaultTest, TornHelloFailsCleanlyAndServerSurvives) {
  FaultHarness harness;

  // Every connection's Hello is torn: the channel can never come up. That
  // must be a clean Status after the backoff schedule, not a hang or crash.
  FaultSpec spec;
  spec.torn_frame = 0;
  spec.torn_prefix_bytes = 2;
  auto channel = harness.Channel(spec, /*call_timeout_ms=*/2000);
  Status connected = channel->Connect();
  ASSERT_FALSE(connected.ok());
  Status reconnected = channel->Reconnect();
  ASSERT_FALSE(reconnected.ok());

  // The damaged dials did not wedge the server: a clean channel still works.
  auto clean = harness.Channel(FaultSpec{});
  SocketExplorationService stub(clean, 1, "upstream");
  EXPECT_GT(stub.TakeCheckpoint(1), 0u);
}

TEST(FaultTest, FaultsNeverProduceAWrongVerdictAcrossAMatrix) {
  // A sweep across fault kinds and positions. Every run either produces the
  // reference verdict (the channel healed it) or a clean error Status; any
  // crash or hang fails the test by construction.
  FaultHarness harness;
  ExploratoryBatchReply reference = harness.CleanReference();

  std::vector<FaultSpec> specs;
  for (size_t frame = 0; frame <= kBatchFrame; ++frame) {
    FaultSpec torn;
    torn.torn_frame = frame;
    torn.torn_prefix_bytes = 1;
    specs.push_back(torn);
    FaultSpec drop;
    drop.drop_frame = frame;
    specs.push_back(drop);
    FaultSpec flip;
    flip.flip_frame = frame;
    flip.flip_bit = 40;
    specs.push_back(flip);
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    auto channel = harness.Channel(specs[i], /*call_timeout_ms=*/2000);
    SocketExplorationService stub(channel, 1, "upstream");
    const uint64_t epoch = stub.TakeCheckpoint(3);
    if (epoch == 0) {
      continue;  // checkpoint path reported cleanly; nothing to verify
    }
    StatusOr<ExploratoryBatchReply> reply = stub.ExecuteBatch(
        TestBatch(epoch, {"203.0.113.0/24", "192.0.2.0/24"}));
    if (!reply.ok()) {
      continue;  // clean error is an acceptable outcome
    }
    FaultHarness::Normalize(*reply);
    EXPECT_EQ(*reply, reference) << "fault " << i << " changed the verdict";
  }
  // And after all that abuse the server still answers a pristine client.
  auto clean = harness.Channel(FaultSpec{});
  SocketExplorationService stub(clean, 1, "upstream");
  EXPECT_GT(stub.TakeCheckpoint(9), 0u);
}

}  // namespace
}  // namespace dice::transport
