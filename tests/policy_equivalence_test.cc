// Property: the filter interpreter must produce identical verdicts under the
// concrete context and the symbolic context, for random filters and random
// routes. This is the §3.2 guarantee ("original and instrumented code ...
// operate on the same data") at the policy-engine level: instrumentation may
// record constraints but must never change what the filter decides.

#include <gtest/gtest.h>

#include "src/bgp/policy_eval.h"
#include "src/bgp/rib.h"
#include "src/dice/symbolic_ctx.h"
#include "src/util/rng.h"

namespace dice {
namespace {

using namespace bgp;

Prefix RandomPrefix(Rng& rng) {
  return Prefix::Make(Ipv4Address(rng.NextU32()), static_cast<uint8_t>(rng.NextBelow(33)));
}

Match RandomMatch(Rng& rng, const std::vector<std::string>& list_names) {
  Match m;
  switch (rng.NextBelow(10)) {
    case 0:
      m.kind = MatchKind::kAny;
      break;
    case 1:
      m.kind = MatchKind::kPrefixInList;
      m.list_name = list_names[rng.NextBelow(list_names.size())];
      break;
    case 2:
      m.kind = MatchKind::kPrefixIs;
      m.prefix = RandomPrefix(rng);
      break;
    case 3:
      m.kind = MatchKind::kPrefixWithin;
      m.prefix = Prefix::Make(Ipv4Address(rng.NextU32()),
                              static_cast<uint8_t>(rng.NextBelow(17)));
      break;
    case 4:
      m.kind = MatchKind::kOriginAsIs;
      m.number = static_cast<uint32_t>(1 + rng.NextBelow(1000));
      break;
    case 5:
      m.kind = MatchKind::kAsPathContains;
      m.number = static_cast<uint32_t>(1 + rng.NextBelow(1000));
      break;
    case 6:
      m.kind = MatchKind::kAsPathLength;
      m.cmp = static_cast<CmpOp>(rng.NextBelow(6));
      m.number = static_cast<uint32_t>(rng.NextBelow(6));
      break;
    case 7:
      m.kind = MatchKind::kHasCommunity;
      m.community = MakeCommunity(static_cast<uint16_t>(rng.NextBelow(5)),
                                  static_cast<uint16_t>(rng.NextBelow(5)));
      break;
    case 8:
      m.kind = MatchKind::kMedCmp;
      m.cmp = static_cast<CmpOp>(rng.NextBelow(6));
      m.number = static_cast<uint32_t>(rng.NextBelow(200));
      break;
    default:
      m.kind = MatchKind::kOriginCodeIs;
      m.number = static_cast<uint32_t>(rng.NextBelow(3));
      break;
  }
  return m;
}

Action RandomAction(Rng& rng) {
  Action a;
  switch (rng.NextBelow(6)) {
    case 0:
      a.kind = ActionKind::kSetLocalPref;
      a.number = static_cast<uint32_t>(rng.NextBelow(500));
      break;
    case 1:
      a.kind = ActionKind::kSetMed;
      a.number = static_cast<uint32_t>(rng.NextBelow(500));
      break;
    case 2:
      a.kind = ActionKind::kPrependAs;
      a.number = static_cast<uint32_t>(1 + rng.NextBelow(65535));
      break;
    case 3:
      a.kind = ActionKind::kAddCommunity;
      a.community = MakeCommunity(static_cast<uint16_t>(rng.NextBelow(5)),
                                  static_cast<uint16_t>(rng.NextBelow(5)));
      break;
    case 4:
      a.kind = ActionKind::kRemoveCommunity;
      a.community = MakeCommunity(static_cast<uint16_t>(rng.NextBelow(5)),
                                  static_cast<uint16_t>(rng.NextBelow(5)));
      break;
    default:
      a.kind = ActionKind::kSetNextHop;
      a.address = Ipv4Address(rng.NextU32());
      break;
  }
  return a;
}

class PolicyEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyEquivalenceProperty, SymbolicAndConcreteVerdictsAgree) {
  Rng rng(GetParam());

  for (int iter = 0; iter < 120; ++iter) {
    // Random policy store with two prefix lists.
    PolicyStore store;
    std::vector<std::string> list_names{"l0", "l1"};
    for (const std::string& name : list_names) {
      PrefixList list;
      list.name = name;
      size_t entries = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < entries; ++i) {
        PrefixListEntry entry;
        entry.prefix =
            Prefix::Make(Ipv4Address(rng.NextU32()), static_cast<uint8_t>(8 + rng.NextBelow(17)));
        entry.le = static_cast<uint8_t>(
            entry.prefix.length() +
            rng.NextBelow(33u - entry.prefix.length()));
        list.entries.push_back(entry);
      }
      ASSERT_TRUE(store.AddPrefixList(std::move(list)).ok());
    }

    // Random filter: up to 4 terms, each up to 2 matches and 3 actions.
    Filter filter;
    filter.name = "random";
    size_t terms = 1 + rng.NextBelow(4);
    for (size_t t = 0; t < terms; ++t) {
      FilterTerm term;
      size_t matches = rng.NextBelow(3);
      for (size_t m = 0; m < matches; ++m) {
        term.matches.push_back(RandomMatch(rng, list_names));
      }
      size_t actions = rng.NextBelow(3);
      for (size_t a = 0; a < actions; ++a) {
        term.actions.push_back(RandomAction(rng));
      }
      if (rng.NextBool(0.7)) {
        Action terminal;
        terminal.kind = rng.NextBool(0.6) ? ActionKind::kAccept : ActionKind::kReject;
        term.actions.push_back(terminal);
      }
      filter.terms.push_back(std::move(term));
    }
    filter.default_accept = rng.NextBool(0.5);

    // Random route.
    Prefix prefix = RandomPrefix(rng);
    PathAttributes attrs;
    size_t path_len = 1 + rng.NextBelow(4);
    std::vector<AsNumber> path;
    for (size_t i = 0; i < path_len; ++i) {
      path.push_back(static_cast<AsNumber>(1 + rng.NextBelow(1000)));
    }
    attrs.as_path = AsPath::Sequence(path);
    attrs.origin = static_cast<Origin>(rng.NextBelow(3));
    attrs.next_hop = Ipv4Address(rng.NextU32());
    if (rng.NextBool(0.5)) {
      attrs.med = static_cast<uint32_t>(rng.NextBelow(300));
    }
    size_t comms = rng.NextBelow(3);
    for (size_t i = 0; i < comms; ++i) {
      attrs.communities.push_back(MakeCommunity(static_cast<uint16_t>(rng.NextBelow(5)),
                                                static_cast<uint16_t>(rng.NextBelow(5))));
    }

    // Concrete evaluation.
    FilterVerdict concrete = EvaluateFilterConcrete(filter, store, prefix, attrs);

    // Symbolic evaluation with all route fields marked symbolic (seeded to
    // the same concrete values).
    sym::Engine engine;
    engine.BeginRun({});
    SymbolicCtx ctx(&engine);
    RouteView<sym::Value> view;
    view.prefix_addr =
        engine.MakeSymbolic("addr", 32, prefix.address().bits(), 0, 0xffffffffULL);
    view.prefix_len = engine.MakeSymbolic("len", 8, prefix.length(), 0, 32);
    for (size_t i = 0; i < path.size(); ++i) {
      view.as_path.push_back(
          engine.MakeSymbolic("asn" + std::to_string(i), 16, path[i], 1, 0xffff));
    }
    view.origin_code = engine.MakeSymbolic("origin", 8, static_cast<uint64_t>(attrs.origin), 0, 2);
    view.next_hop = sym::Value(attrs.next_hop.bits());
    view.med = attrs.med.has_value()
                   ? engine.MakeSymbolic("med", 32, *attrs.med, 0, 0xffffffffULL)
                   : sym::Value(0);
    view.med_present = attrs.med.has_value();
    view.local_pref = sym::Value(kDefaultLocalPref);
    for (const Community c : attrs.communities) {
      view.communities.push_back(sym::Value(c));
    }

    auto symbolic = EvaluateFilter(ctx, filter, store, std::move(view));

    EXPECT_EQ(symbolic.accepted, concrete.accepted)
        << "iter " << iter << ": symbolic and concrete verdicts diverged";
    if (symbolic.accepted && concrete.accepted) {
      if (symbolic.route.local_pref_present) {
        EXPECT_EQ(static_cast<uint32_t>(symbolic.route.local_pref.concrete()),
                  concrete.attrs.local_pref.value_or(kDefaultLocalPref));
      }
      EXPECT_EQ(symbolic.route.communities.size(), concrete.attrs.communities.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyEquivalenceProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dice
