// Tests for the durable snapshot formats (src/persist): the query-cache and
// router-state containers must round-trip bit-exactly, serve warm restarts
// whose detections are identical to the uninterrupted run, and answer every
// malformed byte — truncation at each length, each single-bit flip, version
// skew, magic confusion, trailing garbage, fingerprint mismatch — with a
// Status, never a crash. Same discipline as exploration_wire_test, because
// these bytes cross a process lifetime instead of a network.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dice/explorer.h"
#include "src/persist/query_cache_snapshot.h"
#include "src/persist/router_state_snapshot.h"
#include "src/util/frame.h"

namespace dice {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

bgp::UpdateMessage SeedUpdate() {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence({1, 100});
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(P("10.1.7.0/24"));
  return u;
}

// The Fig. 2 provider with the fat-fingered filter entry that leaks foreign
// address space — the same scenario dice_test explores, so the snapshot
// layer is exercised by a cache that actually holds verdicts and cores.
struct ProviderFixture {
  ProviderFixture() {
    auto config = std::make_shared<bgp::RouterConfig>();
    config->name = "provider";
    config->local_as = 3;
    config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");

    bgp::PrefixList customers;
    customers.name = "customers";
    customers.entries.push_back(bgp::PrefixListEntry{P("10.1.0.0/16"), 0, 24});
    customers.entries.push_back(bgp::PrefixListEntry{P("208.65.152.0/22"), 0, 24});
    EXPECT_TRUE(config->policies.AddPrefixList(std::move(customers)).ok());
    EXPECT_TRUE(config->policies
                    .AddFilter(bgp::MakeCustomerImportFilter("customer-in", "customers"))
                    .ok());

    bgp::NeighborConfig customer;
    customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer.remote_as = 1;
    customer.import_filter = "customer-in";
    config->neighbors.push_back(customer);

    bgp::NeighborConfig internet;
    internet.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    internet.remote_as = 9;
    config->neighbors.push_back(internet);

    state.config = config;

    AddRoute("208.65.152.0/22", 9, 9, {9, 36561});
    AddRoute("198.51.100.0/24", 9, 9, {9, 64501});
    AddRoute("10.1.7.0/24", 1, 1, {1, 100});

    customer_view.id = 1;
    customer_view.remote_as = 1;
    customer_view.address = *bgp::Ipv4Address::Parse("10.0.0.1");
    customer_view.established = true;
    internet_view.id = 9;
    internet_view.remote_as = 9;
    internet_view.address = *bgp::Ipv4Address::Parse("10.0.0.9");
    internet_view.established = true;
  }

  void AddRoute(const char* prefix, bgp::PeerId peer, bgp::AsNumber peer_as,
                std::vector<bgp::AsNumber> path) {
    bgp::Route route;
    route.peer = peer;
    route.peer_as = peer_as;
    bgp::PathAttributes attrs;
    attrs.origin = bgp::Origin::kIgp;
    attrs.as_path = bgp::AsPath::Sequence(std::move(path));
    attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
    route.attrs = std::move(attrs);
    state.rib.AddRoute(P(prefix), std::move(route));
  }

  std::vector<bgp::PeerView> Peers() const { return {customer_view, internet_view}; }

  bgp::RouterState state;
  bgp::PeerView customer_view;
  bgp::PeerView internet_view;
};

std::vector<std::string> DetectionStrings(const ExplorationReport& report) {
  std::vector<std::string> out;
  for (const Detection& d : report.detections) {
    out.push_back(d.ToString());
  }
  return out;
}

// Runs one full exploration over the fixture and returns the explorer (whose
// solver cache now holds this exploration's verdicts and cores).
std::unique_ptr<Explorer> Explore(const ProviderFixture& fixture) {
  ExplorerOptions options;
  options.concolic.max_runs = 200;
  auto explorer = std::make_unique<Explorer>(options);
  explorer->AddChecker(std::make_unique<HijackChecker>());
  explorer->TakeCheckpoint(fixture.state, fixture.Peers(), 0);
  explorer->ExploreSeed(SeedUpdate(), /*from=*/1);
  return explorer;
}

// --- query cache: warm restart --------------------------------------------

TEST(QueryCacheSnapshotTest, WarmRestartIsBitIdenticalAndServedPreloaded) {
  ProviderFixture fixture;
  std::unique_ptr<Explorer> cold = Explore(fixture);
  ASSERT_FALSE(cold->report().detections.empty()) << "scenario must find the leak";
  Bytes snapshot = persist::SerializeQueryCache(*cold->query_cache());

  // "Restart": a fresh explorer — new process in miniature — warmed from the
  // snapshot, exploring the identical checkpoint and seed.
  ProviderFixture fixture2;
  ExplorerOptions options;
  options.concolic.max_runs = 200;
  Explorer warm(options);
  ASSERT_TRUE(persist::LoadQueryCache(snapshot, *warm.query_cache()).ok());
  warm.AddChecker(std::make_unique<HijackChecker>());
  warm.TakeCheckpoint(fixture2.state, fixture2.Peers(), 0);
  warm.ExploreSeed(SeedUpdate(), 1);

  EXPECT_EQ(DetectionStrings(warm.report()), DetectionStrings(cold->report()))
      << "warm restart changed what exploration finds";
  EXPECT_EQ(warm.report().concolic.runs, cold->report().concolic.runs);
  EXPECT_EQ(warm.report().concolic.unique_paths, cold->report().concolic.unique_paths);
  EXPECT_EQ(warm.report().solver.cache_misses, 0u)
      << "identical workload must be fully served from the reloaded cache";
  EXPECT_GT(warm.report().solver.cache_preloaded_hits, 0u)
      << "warm hits must be attributed to the snapshot";
  EXPECT_EQ(cold->report().solver.cache_preloaded_hits, 0u)
      << "a cold run has nothing preloaded to hit";
}

TEST(QueryCacheSnapshotTest, SecondSerializationIsDeterministic) {
  ProviderFixture fixture;
  std::unique_ptr<Explorer> explorer = Explore(fixture);
  Bytes a = persist::SerializeQueryCache(*explorer->query_cache());
  Bytes b = persist::SerializeQueryCache(*explorer->query_cache());
  EXPECT_EQ(a, b);

  // Load into a fresh cache and re-serialize: the round trip is bit-stable
  // (entries sorted by key, nodes in canonical bottom-up order).
  sym::QueryCache reloaded(4096, 256);
  ASSERT_TRUE(persist::LoadQueryCache(a, reloaded).ok());
  EXPECT_EQ(persist::SerializeQueryCache(reloaded), a);
}

TEST(QueryCacheSnapshotTest, ImportMarksCoresPreloaded) {
  sym::QueryCache source(64, 8);
  sym::ExprPtr x = sym::Expr::MakeVar(0, 32);
  sym::ExprPtr a = sym::Expr::ULt(x, sym::Expr::MakeConst(10, 32));
  sym::ExprPtr b = sym::Expr::UGt(x, sym::Expr::MakeConst(20, 32));
  sym::QueryKey key{a->id(), b->id()};
  std::sort(key.begin(), key.end());
  source.PublishCores({sym::QueryCache::Core{key, {a, b}}});

  sym::QueryCache reloaded(64, 8);
  ASSERT_TRUE(
      persist::LoadQueryCache(persist::SerializeQueryCache(source), reloaded).ok());
  bool preloaded = false;
  EXPECT_TRUE(reloaded.MatchesUnsatCore(key, &preloaded));
  EXPECT_TRUE(preloaded);
  bool source_preloaded = true;
  EXPECT_TRUE(source.MatchesUnsatCore(key, &source_preloaded));
  EXPECT_FALSE(source_preloaded) << "the origin cache learned its core locally";
}

// --- query cache: malformed bytes -----------------------------------------

class QueryCacheCorruption : public ::testing::Test {
 protected:
  QueryCacheCorruption() {
    ProviderFixture fixture;
    snapshot_ = persist::SerializeQueryCache(*Explore(fixture)->query_cache());
  }

  Status Load(const Bytes& bytes) {
    sym::QueryCache scratch(4096, 256);
    return persist::LoadQueryCache(bytes, scratch);
  }

  Bytes snapshot_;
};

TEST_F(QueryCacheCorruption, EveryTruncationIsAnError) {
  ASSERT_TRUE(Load(snapshot_).ok());
  for (size_t len = 0; len < snapshot_.size(); ++len) {
    Bytes truncated(snapshot_.begin(), snapshot_.begin() + len);
    EXPECT_FALSE(Load(truncated).ok()) << "length " << len << " parsed";
  }
}

TEST_F(QueryCacheCorruption, EverySingleBitFlipIsAnError) {
  for (size_t byte = 0; byte < snapshot_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = snapshot_;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(Load(flipped).ok()) << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
}

TEST_F(QueryCacheCorruption, VersionSkewMagicConfusionAndTrailingGarbage) {
  // A future version must be rejected, not misread.
  Bytes body(snapshot_.begin() + kFrameHeaderSize, snapshot_.end());
  Bytes reframed = FrameMessage(persist::kQueryCacheSnapshotMagic,
                                persist::kQueryCacheSnapshotVersion + 1, body);
  EXPECT_FALSE(Load(reframed).ok());

  // A router-state snapshot can never load as a query cache.
  ProviderFixture fixture;
  EXPECT_FALSE(Load(persist::SerializeRouterState(fixture.state, 1)).ok());

  // Bytes past the body are an error even when re-checksummed.
  Bytes padded_body = body;
  padded_body.push_back(0);
  EXPECT_FALSE(Load(FrameMessage(persist::kQueryCacheSnapshotMagic,
                                 persist::kQueryCacheSnapshotVersion, padded_body))
                   .ok());
}

TEST_F(QueryCacheCorruption, FailedLoadLeavesCacheUntouched) {
  sym::QueryCache cache(4096, 256);
  ASSERT_TRUE(persist::LoadQueryCache(snapshot_, cache).ok());
  Bytes before = persist::SerializeQueryCache(cache);

  Bytes corrupt = snapshot_;
  corrupt[snapshot_.size() - 1] ^= 0x40u;
  EXPECT_FALSE(persist::LoadQueryCache(corrupt, cache).ok());
  EXPECT_EQ(persist::SerializeQueryCache(cache), before)
      << "a rejected snapshot must not clobber the warm cache";
}

// --- router state ----------------------------------------------------------

constexpr uint64_t kFingerprint = 0x5eedf00d;

// A state with every persisted feature live: shared interned attributes,
// Adj-RIB-Out entries, and non-zero processing counters (ProcessUpdate runs
// the real import/selection/export path).
bgp::RouterState PopulatedState() {
  ProviderFixture fixture;
  bgp::UpdateSink discard = [](bgp::PeerId, const bgp::UpdateMessage&) {};
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence({1, 100});
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  u.attrs.med = 30;
  u.attrs.local_pref = 120;
  u.attrs.communities.push_back(0x00030001);
  u.nlri.push_back(P("10.1.9.0/24"));
  bgp::ProcessUpdate(fixture.state, fixture.Peers(), fixture.customer_view,
                     fixture.state.config->neighbors.front(), u, discard);
  return std::move(fixture.state);
}

TEST(RouterStateSnapshotTest, RoundTripIsBitIdentical) {
  bgp::RouterState state = PopulatedState();
  Bytes snapshot = persist::SerializeRouterState(state, kFingerprint);
  StatusOr<bgp::RouterState> restored =
      persist::LoadRouterState(snapshot, state.config, kFingerprint);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->rib.PrefixCount(), state.rib.PrefixCount());
  EXPECT_EQ(restored->updates_processed, state.updates_processed);
  EXPECT_EQ(restored->routes_accepted, state.routes_accepted);
  EXPECT_EQ(persist::SerializeRouterState(*restored, kFingerprint), snapshot)
      << "restored state must re-serialize to the identical bytes";
}

TEST(RouterStateSnapshotTest, FingerprintMismatchIsFailedPrecondition) {
  bgp::RouterState state = PopulatedState();
  Bytes snapshot = persist::SerializeRouterState(state, kFingerprint);
  StatusOr<bgp::RouterState> restored =
      persist::LoadRouterState(snapshot, state.config, kFingerprint + 1);
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition)
      << "state computed under another config/table must never load";
}

class RouterStateCorruption : public ::testing::Test {
 protected:
  RouterStateCorruption() : state_(PopulatedState()) {
    snapshot_ = persist::SerializeRouterState(state_, kFingerprint);
  }

  Status Load(const Bytes& bytes) {
    return persist::LoadRouterState(bytes, state_.config, kFingerprint).status();
  }

  bgp::RouterState state_;
  Bytes snapshot_;
};

TEST_F(RouterStateCorruption, EveryTruncationIsAnError) {
  ASSERT_TRUE(Load(snapshot_).ok());
  for (size_t len = 0; len < snapshot_.size(); ++len) {
    Bytes truncated(snapshot_.begin(), snapshot_.begin() + len);
    EXPECT_FALSE(Load(truncated).ok()) << "length " << len << " parsed";
  }
}

TEST_F(RouterStateCorruption, EverySingleBitFlipIsAnError) {
  for (size_t byte = 0; byte < snapshot_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = snapshot_;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(Load(flipped).ok()) << "bit " << bit << " of byte " << byte << " parsed";
    }
  }
}

TEST_F(RouterStateCorruption, VersionSkewMagicConfusionAndTrailingGarbage) {
  Bytes body(snapshot_.begin() + kFrameHeaderSize, snapshot_.end());
  EXPECT_FALSE(Load(FrameMessage(persist::kRouterStateSnapshotMagic,
                                 persist::kRouterStateSnapshotVersion + 1, body))
                   .ok());

  sym::QueryCache cache(64, 8);
  EXPECT_FALSE(Load(persist::SerializeQueryCache(cache)).ok())
      << "a query-cache snapshot can never load as router state";

  Bytes padded_body = body;
  padded_body.push_back(0);
  EXPECT_FALSE(Load(FrameMessage(persist::kRouterStateSnapshotMagic,
                                 persist::kRouterStateSnapshotVersion, padded_body))
                   .ok());
}

}  // namespace
}  // namespace dice
