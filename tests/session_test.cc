// Tests for the BGP session FSM: handshake, timers, teardown, error handling.

#include <gtest/gtest.h>

#include "src/bgp/session.h"

namespace dice::bgp {
namespace {

class SessionHarness {
 public:
  explicit SessionHarness(AsNumber local_as = 65001, AsNumber expected_peer = 65002,
                          uint16_t hold_time = 90) {
    SessionCallbacks callbacks;
    callbacks.send = [this](const Message& m) { sent.push_back(m); };
    callbacks.on_established = [this] { ++established_count; };
    callbacks.on_down = [this] { ++down_count; };
    callbacks.on_update = [this](const UpdateMessage& u) { updates.push_back(u); };
    session = std::make_unique<Session>(&loop, local_as, *Ipv4Address::Parse("1.1.1.1"),
                                        expected_peer, hold_time, std::move(callbacks));
  }

  OpenMessage PeerOpen(AsNumber asn = 65002, uint16_t hold = 90) {
    OpenMessage open;
    open.my_as = asn;
    open.hold_time = hold;
    open.bgp_id = *Ipv4Address::Parse("2.2.2.2");
    return open;
  }

  // Runs the standard handshake to Established.
  void Establish() {
    session->Start();
    session->OnLinkUp();
    session->OnMessage(Message(PeerOpen()));
    session->OnMessage(Message(KeepaliveMessage{}));
    ASSERT_TRUE(session->established());
  }

  MessageType SentType(size_t i) const { return TypeOf(sent.at(i)); }

  net::EventLoop loop;
  std::unique_ptr<Session> session;
  std::vector<Message> sent;
  std::vector<UpdateMessage> updates;
  int established_count = 0;
  int down_count = 0;
};

TEST(SessionTest, HandshakeReachesEstablished) {
  SessionHarness h;
  h.session->Start();
  EXPECT_EQ(h.session->state(), SessionState::kConnect);
  h.session->OnLinkUp();
  EXPECT_EQ(h.session->state(), SessionState::kOpenSent);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.SentType(0), MessageType::kOpen);

  h.session->OnMessage(Message(h.PeerOpen()));
  EXPECT_EQ(h.session->state(), SessionState::kOpenConfirm);
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.SentType(1), MessageType::kKeepalive);

  h.session->OnMessage(Message(KeepaliveMessage{}));
  EXPECT_EQ(h.session->state(), SessionState::kEstablished);
  EXPECT_EQ(h.established_count, 1);
}

TEST(SessionTest, LinkUpBeforeStartWaits) {
  SessionHarness h;
  h.session->OnLinkUp();
  EXPECT_EQ(h.session->state(), SessionState::kIdle);
  h.session->Start();
  EXPECT_EQ(h.session->state(), SessionState::kOpenSent);
}

TEST(SessionTest, WrongPeerAsRejectedWithNotification) {
  SessionHarness h;
  h.session->Start();
  h.session->OnLinkUp();
  h.session->OnMessage(Message(h.PeerOpen(64999)));
  // NOTIFICATION sent, session dropped (then auto-retry schedules).
  bool saw_notification = false;
  for (const Message& m : h.sent) {
    if (TypeOf(m) == MessageType::kNotification) {
      saw_notification = true;
      const auto& n = std::get<NotificationMessage>(m);
      EXPECT_EQ(n.code, NotificationCode::kOpenMessageError);
      EXPECT_EQ(n.subcode, 2);
    }
  }
  EXPECT_TRUE(saw_notification);
  EXPECT_NE(h.session->state(), SessionState::kEstablished);
}

TEST(SessionTest, UpdatesDeliveredOnlyWhenEstablished) {
  SessionHarness h;
  UpdateMessage u;
  u.withdrawn.push_back(*Prefix::Parse("10.0.0.0/8"));
  h.session->OnMessage(Message(u));  // Idle: ignored
  EXPECT_TRUE(h.updates.empty());

  h.Establish();
  h.session->OnMessage(Message(u));
  ASSERT_EQ(h.updates.size(), 1u);
  EXPECT_EQ(h.session->updates_received(), 1u);
}

TEST(SessionTest, NotificationDropsEstablishedSession) {
  SessionHarness h;
  h.Establish();
  NotificationMessage n;
  n.code = NotificationCode::kCease;
  h.session->OnMessage(Message(n));
  EXPECT_EQ(h.down_count, 1);
  EXPECT_EQ(h.session->notifications_received(), 1u);
  EXPECT_NE(h.session->state(), SessionState::kEstablished);
}

TEST(SessionTest, HoldTimerExpiryDropsSession) {
  SessionHarness h;
  h.Establish();
  // No messages arrive; advancing past the hold time must drop the session.
  h.loop.RunUntil(91 * net::kSecond);
  EXPECT_EQ(h.down_count, 1);
  bool saw_hold_notification = false;
  for (const Message& m : h.sent) {
    if (TypeOf(m) == MessageType::kNotification &&
        std::get<NotificationMessage>(m).code == NotificationCode::kHoldTimerExpired) {
      saw_hold_notification = true;
    }
  }
  EXPECT_TRUE(saw_hold_notification);
}

TEST(SessionTest, TrafficKeepsHoldTimerFresh) {
  SessionHarness h;
  h.Establish();
  // Feed a keepalive every 60 simulated seconds; the session must survive
  // well past the 90 s hold time.
  for (int i = 1; i <= 5; ++i) {
    h.loop.RunUntil(static_cast<net::SimTime>(i) * 60 * net::kSecond);
    h.session->OnMessage(Message(KeepaliveMessage{}));
  }
  EXPECT_EQ(h.down_count, 0);
  EXPECT_TRUE(h.session->established());
}

TEST(SessionTest, KeepalivesSentPeriodically) {
  SessionHarness h;
  h.Establish();
  size_t sent_before = h.sent.size();
  // Keepalive interval is hold/3 = 30 s; keep the session alive from the
  // peer side and count our keepalives over 2 minutes.
  for (int i = 1; i <= 4; ++i) {
    h.loop.RunUntil(static_cast<net::SimTime>(i) * 30 * net::kSecond);
    h.session->OnMessage(Message(KeepaliveMessage{}));
  }
  size_t keepalives = 0;
  for (size_t i = sent_before; i < h.sent.size(); ++i) {
    if (h.SentType(i) == MessageType::kKeepalive) {
      ++keepalives;
    }
  }
  EXPECT_GE(keepalives, 3u);
}

TEST(SessionTest, LinkDownDropsAndAllowsReestablish) {
  SessionHarness h;
  h.Establish();
  h.session->OnLinkDown();
  EXPECT_EQ(h.down_count, 1);
  EXPECT_EQ(h.session->state(), SessionState::kConnect);

  h.session->OnLinkUp();
  EXPECT_EQ(h.session->state(), SessionState::kOpenSent);
  h.session->OnMessage(Message(h.PeerOpen()));
  h.session->OnMessage(Message(KeepaliveMessage{}));
  EXPECT_TRUE(h.session->established());
  EXPECT_EQ(h.established_count, 2);
}

TEST(SessionTest, StopSendsCease) {
  SessionHarness h;
  h.Establish();
  h.session->Stop(/*send_notification=*/true);
  EXPECT_EQ(TypeOf(h.sent.back()), MessageType::kNotification);
  EXPECT_EQ(h.session->state(), SessionState::kIdle);
  EXPECT_EQ(h.down_count, 1);
}

TEST(SessionTest, UpdateInOpenSentIsFsmError) {
  SessionHarness h;
  h.session->Start();
  h.session->OnLinkUp();
  UpdateMessage u;
  h.session->OnMessage(Message(u));
  bool saw_fsm_error = false;
  for (const Message& m : h.sent) {
    if (TypeOf(m) == MessageType::kNotification &&
        std::get<NotificationMessage>(m).code == NotificationCode::kFsmError) {
      saw_fsm_error = true;
    }
  }
  EXPECT_TRUE(saw_fsm_error);
}

TEST(SessionTest, AutomaticRestartAfterDrop) {
  SessionHarness h;
  h.Establish();
  NotificationMessage n;
  h.session->OnMessage(Message(n));  // peer ceases
  // The session retries after ~1 s.
  h.loop.RunUntil(h.loop.now() + 2 * net::kSecond);
  EXPECT_EQ(h.session->state(), SessionState::kOpenSent);
}

}  // namespace
}  // namespace dice::bgp
