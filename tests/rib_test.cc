// Tests for the RIB and the decision process (RFC 4271 §9.1).

#include <gtest/gtest.h>

#include "src/bgp/rib.h"

namespace dice::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::Parse(s); }

Route MakeRoute(PeerId peer, AsNumber peer_as, std::vector<AsNumber> path,
                std::optional<uint32_t> local_pref = std::nullopt,
                std::optional<uint32_t> med = std::nullopt,
                Origin origin = Origin::kIgp) {
  Route r;
  r.peer = peer;
  r.peer_as = peer_as;
  PathAttributes attrs;
  attrs.as_path = AsPath::Sequence(std::move(path));
  attrs.local_pref = local_pref;
  attrs.med = med;
  attrs.origin = origin;
  r.attrs = std::move(attrs);
  return r;
}

// --- RoutePreferred ordering ---------------------------------------------------

TEST(RoutePreferredTest, HigherLocalPrefWins) {
  Route a = MakeRoute(1, 100, {100, 200}, 200);
  Route b = MakeRoute(2, 101, {101}, 100);
  EXPECT_TRUE(RoutePreferred(a, b));
  EXPECT_FALSE(RoutePreferred(b, a));
}

TEST(RoutePreferredTest, DefaultLocalPrefIs100) {
  Route a = MakeRoute(1, 100, {100}, std::nullopt);
  Route b = MakeRoute(2, 101, {101, 102}, 100);
  // Same effective local-pref; a has the shorter path.
  EXPECT_TRUE(RoutePreferred(a, b));
}

TEST(RoutePreferredTest, ShorterPathWins) {
  Route a = MakeRoute(1, 100, {100, 200, 300});
  Route b = MakeRoute(2, 101, {101, 201});
  EXPECT_TRUE(RoutePreferred(b, a));
}

TEST(RoutePreferredTest, LowerOriginWins) {
  Route a = MakeRoute(1, 100, {100}, std::nullopt, std::nullopt, Origin::kIgp);
  Route b = MakeRoute(2, 101, {101}, std::nullopt, std::nullopt, Origin::kIncomplete);
  EXPECT_TRUE(RoutePreferred(a, b));
}

TEST(RoutePreferredTest, MedComparedOnlyWithinSameNeighborAs) {
  Route a = MakeRoute(1, 100, {100}, std::nullopt, 10);
  Route b = MakeRoute(2, 100, {100}, std::nullopt, 5);
  EXPECT_TRUE(RoutePreferred(b, a));  // same peer AS: lower MED wins

  Route c = MakeRoute(1, 100, {100}, std::nullopt, 50);
  Route d = MakeRoute(2, 200, {200}, std::nullopt, 5);
  // Different neighbor AS: MED skipped, falls through to peer id.
  EXPECT_TRUE(RoutePreferred(c, d));
}

TEST(RoutePreferredTest, MissingMedTreatedAsZero) {
  Route a = MakeRoute(1, 100, {100}, std::nullopt, std::nullopt);
  Route b = MakeRoute(2, 100, {100}, std::nullopt, 1);
  EXPECT_TRUE(RoutePreferred(a, b));
}

TEST(RoutePreferredTest, PeerIdBreaksTies) {
  Route a = MakeRoute(3, 100, {100});
  Route b = MakeRoute(5, 200, {200});
  EXPECT_TRUE(RoutePreferred(a, b));
  EXPECT_FALSE(RoutePreferred(b, a));
}

TEST(RoutePreferredTest, IsStrictWeakOrderOnDistinctPeers) {
  std::vector<Route> routes{
      MakeRoute(1, 100, {100, 200}, 150),
      MakeRoute(2, 101, {101}, 150),
      MakeRoute(3, 102, {102, 202, 302}),
      MakeRoute(4, 103, {103}, std::nullopt, 9, Origin::kEgp),
  };
  for (const Route& r : routes) {
    EXPECT_FALSE(RoutePreferred(r, r)) << "irreflexive";
  }
  for (const Route& x : routes) {
    for (const Route& y : routes) {
      if (x.peer == y.peer) {
        continue;
      }
      EXPECT_NE(RoutePreferred(x, y), RoutePreferred(y, x)) << "total on distinct peers";
    }
  }
}

// --- Rib behaviour ---------------------------------------------------------------

TEST(RibTest, AddRouteSelectsBest) {
  Rib rib;
  auto r1 = rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100, 300}));
  EXPECT_TRUE(r1.best_changed);
  EXPECT_FALSE(r1.previous_best.has_value());
  ASSERT_TRUE(r1.new_best.has_value());
  EXPECT_EQ(r1.new_best->peer, 1u);

  // Better (shorter) route from another peer takes over.
  auto r2 = rib.AddRoute(P("10.0.0.0/8"), MakeRoute(2, 200, {200}));
  EXPECT_TRUE(r2.best_changed);
  ASSERT_TRUE(r2.previous_best.has_value());
  EXPECT_EQ(r2.previous_best->peer, 1u);
  EXPECT_EQ(r2.new_best->peer, 2u);
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8"))->peer, 2u);
  EXPECT_EQ(rib.Candidates(P("10.0.0.0/8")).size(), 2u);
}

TEST(RibTest, WorseRouteDoesNotChangeBest) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  auto r = rib.AddRoute(P("10.0.0.0/8"), MakeRoute(2, 200, {200, 300, 400}));
  EXPECT_FALSE(r.best_changed);
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8"))->peer, 1u);
}

TEST(RibTest, ImplicitWithdrawReplacesSamePeerRoute) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100, 300}));
  auto r = rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100, 300, 400, 500}));
  EXPECT_EQ(rib.Candidates(P("10.0.0.0/8")).size(), 1u);
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8"))->attrs->as_path.EffectiveLength(), 4u);
  EXPECT_TRUE(r.best_changed);  // the selected route's attributes changed
}

TEST(RibTest, RemoveRoutePromotesRunnerUp) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(2, 200, {200, 300}));
  auto r = rib.RemoveRoute(P("10.0.0.0/8"), 1);
  EXPECT_TRUE(r.best_changed);
  EXPECT_EQ(r.new_best->peer, 2u);
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8"))->peer, 2u);
}

TEST(RibTest, RemoveLastRouteErasesPrefix) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  auto r = rib.RemoveRoute(P("10.0.0.0/8"), 1);
  EXPECT_TRUE(r.best_changed);
  EXPECT_FALSE(r.new_best.has_value());
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(rib.PrefixCount(), 0u);
}

TEST(RibTest, RemoveNonexistentIsNoop) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  auto r = rib.RemoveRoute(P("10.0.0.0/8"), 9);
  EXPECT_FALSE(r.best_changed);
  auto r2 = rib.RemoveRoute(P("11.0.0.0/8"), 1);
  EXPECT_FALSE(r2.best_changed);
}

TEST(RibTest, RemovePeerFlushesOnlyThatPeer) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  rib.AddRoute(P("11.0.0.0/8"), MakeRoute(1, 100, {100, 300}));
  rib.AddRoute(P("11.0.0.0/8"), MakeRoute(2, 200, {200, 300, 400}));
  rib.AddRoute(P("12.0.0.0/8"), MakeRoute(2, 200, {200}));

  std::vector<Prefix> changed = rib.RemovePeer(1);
  // 10/8 lost entirely, 11/8 fell over to peer 2: both changed best.
  EXPECT_EQ(changed.size(), 2u);
  EXPECT_EQ(rib.BestRoute(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(rib.BestRoute(P("11.0.0.0/8"))->peer, 2u);
  EXPECT_EQ(rib.BestRoute(P("12.0.0.0/8"))->peer, 2u);
}

TEST(RibTest, LookupUsesLongestMatchOverBests) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  rib.AddRoute(P("10.1.0.0/16"), MakeRoute(2, 200, {200}));
  auto m = rib.Lookup(*Ipv4Address::Parse("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("10.1.0.0/16"));
  EXPECT_EQ(m->second.peer, 2u);

  m = rib.Lookup(*Ipv4Address::Parse("10.200.0.1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, P("10.0.0.0/8"));
}

TEST(RibTest, SnapshotIsIsolated) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  Rib snap = rib.Snapshot();
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(2, 200, {200}));
  rib.AddRoute(P("11.0.0.0/8"), MakeRoute(1, 100, {100}));

  EXPECT_EQ(snap.PrefixCount(), 1u);
  EXPECT_EQ(snap.Candidates(P("10.0.0.0/8")).size(), 1u);
  EXPECT_EQ(snap.BestRoute(P("10.0.0.0/8"))->peer, 1u);
  EXPECT_EQ(rib.Candidates(P("10.0.0.0/8")).size(), 2u);
}

TEST(RibTest, SequenceNumbersIncrease) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  rib.AddRoute(P("11.0.0.0/8"), MakeRoute(1, 100, {100}));
  auto a = rib.BestRoute(P("10.0.0.0/8"))->sequence;
  auto b = rib.BestRoute(P("11.0.0.0/8"))->sequence;
  EXPECT_LT(a, b);
}

// Parameterized sweep: the best route must equal a brute-force scan of the
// candidates under RoutePreferred, whatever the insertion order.
class RibDecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RibDecisionSweep, BestMatchesBruteForce) {
  std::vector<Route> candidates{
      MakeRoute(1, 100, {100, 300}, 150),
      MakeRoute(2, 101, {101}, std::nullopt),
      MakeRoute(3, 100, {100, 300}, 150, 20),
      MakeRoute(4, 102, {102, 202}, std::nullopt, std::nullopt, Origin::kEgp),
      MakeRoute(5, 103, {103, 203, 303}, 150),
  };
  // Rotate insertion order by the parameter.
  int rot = GetParam();
  std::rotate(candidates.begin(), candidates.begin() + rot, candidates.end());

  Rib rib;
  for (const Route& r : candidates) {
    rib.AddRoute(P("10.0.0.0/8"), r);
  }
  const Route* best = rib.BestRoute(P("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);

  const Route* expected = &candidates[0];
  for (const Route& r : candidates) {
    if (RoutePreferred(r, *expected)) {
      expected = &r;
    }
  }
  EXPECT_EQ(best->peer, expected->peer);
}

INSTANTIATE_TEST_SUITE_P(Rotations, RibDecisionSweep, ::testing::Range(0, 5));

TEST(RibTest, CandidatesIsAZeroCopyView) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100}));
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(2, 200, {200}));

  // Candidate inspection performs no route copies: the returned reference is
  // the entry's own vector, stable across calls.
  const std::vector<Route>& first = rib.Candidates(P("10.0.0.0/8"));
  const std::vector<Route>& second = rib.Candidates(P("10.0.0.0/8"));
  EXPECT_EQ(&first, &second);
  const RibEntry* entry = rib.Entry(P("10.0.0.0/8"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(first.data(), entry->routes.data())
      << "Candidates must alias the RibEntry storage, not copy it";

  // Absent prefixes share one empty vector (also no allocation).
  const std::vector<Route>& empty1 = rib.Candidates(P("99.0.0.0/8"));
  const std::vector<Route>& empty2 = rib.Candidates(P("98.0.0.0/8"));
  EXPECT_TRUE(empty1.empty());
  EXPECT_EQ(&empty1, &empty2);
  EXPECT_EQ(rib.Entry(P("99.0.0.0/8")), nullptr);
}

TEST(RibTest, InterningMakesRouteCopiesShareAttrStorage) {
  Rib rib;
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100, 200}));
  Rib snap = rib.Snapshot();
  // Replace the route in the original: path-copy of the entry node. The
  // snapshot's copy of the old route still shares the interned attributes
  // node with any other holder of the same value.
  rib.AddRoute(P("10.0.0.0/8"), MakeRoute(1, 100, {100, 300}));
  const Route* old_route = snap.BestRoute(P("10.0.0.0/8"));
  ASSERT_NE(old_route, nullptr);
  Route rebuilt = MakeRoute(1, 100, {100, 200});
  EXPECT_EQ(old_route->attrs.ptr().get(), rebuilt.attrs.ptr().get())
      << "equal attribute values must resolve to one interned node";
}

}  // namespace
}  // namespace dice::bgp
