// Tests for distributed exploration (§2.4): remote clones process exploratory
// messages in isolation and reveal only the narrow interface; system-wide
// checkers judge cross-domain impact.

#include <gtest/gtest.h>

#include "src/dice/distributed.h"

namespace dice {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

// Two domains: "provider" (AS 3) explores; "upstream" (AS 7) is the remote
// domain reached through the provider's exploratory messages.
class DistributedFixture : public ::testing::Test {
 protected:
  DistributedFixture() : network_(&loop_) {
    // Upstream router: peers with the provider (node 2), accepts everything
    // except a guarded prefix it filters.
    bgp::RouterConfig upstream;
    upstream.name = "upstream";
    upstream.local_as = 7;
    upstream.router_id = *bgp::Ipv4Address::Parse("10.0.0.7");
    bgp::PrefixList guarded;
    guarded.name = "guarded";
    guarded.entries.push_back(bgp::PrefixListEntry{P("198.51.100.0/24"), 0, 32});
    EXPECT_TRUE(upstream.policies.AddPrefixList(std::move(guarded)).ok());
    bgp::Filter filter;
    filter.name = "block-guarded";
    bgp::FilterTerm deny;
    bgp::Match m;
    m.kind = bgp::MatchKind::kPrefixInList;
    m.list_name = "guarded";
    deny.matches.push_back(m);
    bgp::Action reject;
    reject.kind = bgp::ActionKind::kReject;
    deny.actions.push_back(reject);
    filter.terms.push_back(deny);
    filter.default_accept = true;
    EXPECT_TRUE(upstream.policies.AddFilter(std::move(filter)).ok());
    bgp::NeighborConfig from_provider;
    from_provider.address = *bgp::Ipv4Address::Parse("10.0.0.3");
    from_provider.remote_as = 3;
    from_provider.import_filter = "block-guarded";
    upstream.neighbors.push_back(from_provider);

    upstream_router_ = std::make_unique<bgp::Router>(5, std::move(upstream), &network_);
    network_.AddNode(upstream_router_.get());
    upstream_router_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.3"), 2);

    // Pre-existing route at the upstream: a victim prefix with origin 64500.
    upstream_state_victim_ = P("192.0.2.0/24");
    bgp::UpdateMessage install;
    install.attrs.origin = bgp::Origin::kIgp;
    install.attrs.as_path = bgp::AsPath::Sequence({9, 64500});
    install.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
    install.nlri.push_back(upstream_state_victim_);
    // Install directly via the processing core (peer 9 not configured:
    // accept-all default in the RemoteExplorationPeer path is not used here —
    // go through the router's state for realism).
    bgp::RouterState& state = upstream_router_->mutable_state_for_test();
    bgp::Route route;
    route.peer = 9;
    route.peer_as = 9;
    route.attrs = install.attrs;
    state.rib.AddRoute(upstream_state_victim_, route);
  }

  net::EventLoop loop_;
  net::Network network_;
  std::unique_ptr<bgp::Router> upstream_router_;
  bgp::Prefix upstream_state_victim_;
};

bgp::UpdateMessage Announce(const char* prefix, std::vector<bgp::AsNumber> path) {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.3");
  u.nlri.push_back(*bgp::Prefix::Parse(prefix));
  return u;
}

TEST_F(DistributedFixture, RemotePeerRequiresCheckpoint) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  EXPECT_EQ(peer.domain_name(), "upstream");
  EXPECT_EQ(peer.clones_made(), 0u);
}

TEST_F(DistributedFixture, RemoteCloneAcceptsAndReportsNarrowly) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  NarrowReply reply = peer.ProcessExploratory(Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_TRUE(reply.accepted);
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_FALSE(reply.origin_changed) << "prefix was new at the remote";
  EXPECT_EQ(peer.clones_made(), 1u);
}

TEST_F(DistributedFixture, RemoteFilterStillApplies) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  NarrowReply reply = peer.ProcessExploratory(Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.accepted) << "the remote's own policy must keep protecting it";
  EXPECT_FALSE(reply.adopted_as_best);
}

TEST_F(DistributedFixture, RemoteDetectsOriginChange) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  // 192.0.2.0/24 exists at the upstream with origin 64500; a shorter-path
  // exploratory announcement with another origin takes over.
  NarrowReply reply = peer.ProcessExploratory(Announce("192.0.2.0/24", {3, 100}));
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_TRUE(reply.origin_changed);
}

TEST_F(DistributedFixture, RejectedExploratoryMessageIsZeroCopy) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  // The guarded prefix is rejected by the remote's import filter: the reply
  // must be computed against the checkpoint directly, with no clone made.
  NarrowReply reply = peer.ProcessExploratory(Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.accepted);
  EXPECT_FALSE(reply.adopted_as_best);
  EXPECT_EQ(reply.would_propagate, 0u);
  EXPECT_EQ(peer.clones_made(), 0u) << "a pure reject must not copy any state";
  EXPECT_EQ(peer.clones_avoided(), 1u);

  // An accepted exploratory message still materializes a clone.
  peer.ProcessExploratory(Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_EQ(peer.clones_made(), 1u);
  EXPECT_EQ(peer.clones_avoided(), 1u);
}

TEST_F(DistributedFixture, ZeroCopyRejectStillReportsPreexistingCandidate) {
  // The checkpoint already holds a route learned over the exploring node's
  // session; a *rejected* exploratory announcement for the same prefix must
  // report accepted=true (the pre-existing candidate), exactly as the
  // materialized path would after a no-op ProcessUpdate.
  bgp::RouterState& state = upstream_router_->mutable_state_for_test();
  bgp::Route existing;
  existing.peer = 2;  // the session exploratory messages arrive on
  existing.peer_as = 3;
  bgp::PathAttributes existing_attrs;
  existing_attrs.as_path = bgp::AsPath::Sequence({3, 64501});
  existing.attrs = std::move(existing_attrs);
  state.rib.AddRoute(P("198.51.100.0/24"), existing);

  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  NarrowReply reply = peer.ProcessExploratory(Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_TRUE(reply.accepted) << "the checkpoint candidate from this session counts";
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_EQ(peer.clones_made(), 0u) << "still zero-copy: the reject changed nothing";
}

TEST_F(DistributedFixture, NoOpWithdrawalIsZeroCopy) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(P("203.0.113.0/24"));  // nothing learned from us there
  withdraw.nlri.push_back(P("198.51.100.0/24"));      // and the announcement is filtered
  withdraw.attrs.as_path = bgp::AsPath::Sequence({3, 1, 100});
  NarrowReply reply = peer.ProcessExploratory(withdraw);
  EXPECT_FALSE(reply.accepted);
  EXPECT_EQ(peer.clones_made(), 0u);
}

TEST_F(DistributedFixture, RemoteCloneIsIsolatedFromLiveRemote) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  peer.ProcessExploratory(Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_EQ(upstream_router_->rib().BestRoute(P("203.0.113.0/24")), nullptr)
      << "exploratory processing must never touch the remote's live RIB";
}

TEST_F(DistributedFixture, CheckpointIsolatesFromLaterLiveChanges) {
  RemoteExplorationPeer peer("upstream", upstream_router_.get(), 2);
  peer.TakeCheckpoint(0);
  // The live remote changes after the checkpoint...
  bgp::RouterState& state = upstream_router_->mutable_state_for_test();
  bgp::Route route;
  route.peer = 9;
  route.peer_as = 9;
  bgp::PathAttributes route_attrs;
  route_attrs.as_path = bgp::AsPath::Sequence({9, 777});
  route.attrs = std::move(route_attrs);
  state.rib.AddRoute(P("203.0.113.0/24"), route);
  // ...but the clone still sees the checkpoint: the prefix is new there.
  NarrowReply reply = peer.ProcessExploratory(Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.origin_changed);
}

// --- DistributedExplorer end-to-end ------------------------------------------

TEST_F(DistributedFixture, SystemWideConfirmationOfLocalLeak) {
  // Local (provider) state: no customer filter, victim route present.
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "provider";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
  bgp::NeighborConfig customer;
  customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer.remote_as = 1;
  config->neighbors.push_back(customer);

  bgp::RouterState provider_state;
  provider_state.config = config;
  bgp::Route victim;
  victim.peer = 9;
  victim.peer_as = 9;
  bgp::PathAttributes victim_attrs;
  victim_attrs.origin = bgp::Origin::kIgp;
  victim_attrs.as_path = bgp::AsPath::Sequence({9, 64500});
  victim.attrs = std::move(victim_attrs);
  provider_state.rib.AddRoute(P("192.0.2.0/24"), victim);

  bgp::PeerView customer_view;
  customer_view.id = 1;
  customer_view.remote_as = 1;
  customer_view.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer_view.established = true;

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  DistributedExplorer dice(options);
  dice.AddChecker(std::make_unique<HijackChecker>());
  dice.AddRemotePeer(
      std::make_unique<RemoteExplorationPeer>("upstream", upstream_router_.get(), 2));
  dice.TakeCheckpoint(provider_state, {customer_view}, 0);

  bgp::UpdateMessage seed = Announce("10.1.7.0/24", {1, 100});
  dice.ExploreSeed(seed, 1);

  ASSERT_FALSE(dice.local_report().detections.empty());
  // The upstream has 192.0.2.0/24 too (same victim), so local findings on it
  // must be confirmed system-wide.
  bool confirmed = false;
  for (const SystemWideDetection& sw : dice.system_wide()) {
    if (sw.local.prefix == P("192.0.2.0/24")) {
      confirmed = true;
      EXPECT_EQ(sw.adopting_domains, (std::vector<std::string>{"upstream"}));
    }
  }
  EXPECT_TRUE(confirmed) << "the 192.0.2.0/24 leak must be confirmed by the remote domain";
  // And the remote's live state is untouched.
  EXPECT_EQ(upstream_router_->rib().BestRoute(P("10.1.7.0/24")), nullptr);
}

TEST_F(DistributedFixture, GuardedRemoteNotListedAsAdopting) {
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "provider";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
  bgp::NeighborConfig customer;
  customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer.remote_as = 1;
  config->neighbors.push_back(customer);

  bgp::RouterState provider_state;
  provider_state.config = config;
  bgp::Route victim;
  victim.peer = 9;
  victim.peer_as = 9;
  bgp::PathAttributes victim_attrs;
  victim_attrs.origin = bgp::Origin::kIgp;
  victim_attrs.as_path = bgp::AsPath::Sequence({9, 64500});
  victim.attrs = std::move(victim_attrs);
  // The victim here is the prefix the upstream *filters*.
  provider_state.rib.AddRoute(P("198.51.100.0/24"), victim);

  bgp::PeerView customer_view;
  customer_view.id = 1;
  customer_view.remote_as = 1;
  customer_view.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer_view.established = true;

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  DistributedExplorer dice(options);
  dice.AddChecker(std::make_unique<HijackChecker>());
  dice.AddRemotePeer(
      std::make_unique<RemoteExplorationPeer>("upstream", upstream_router_.get(), 2));
  dice.TakeCheckpoint(provider_state, {customer_view}, 0);
  dice.ExploreSeed(Announce("10.1.7.0/24", {1, 100}), 1);

  for (const SystemWideDetection& sw : dice.system_wide()) {
    if (sw.local.prefix == P("198.51.100.0/24")) {
      ADD_FAILURE() << "upstream filters this prefix; it cannot be adopting";
    }
  }
}

}  // namespace
}  // namespace dice
