// Tests for distributed exploration (§2.4): remote clones process exploratory
// batches in isolation and reveal only the narrow interface; system-wide
// checkers judge cross-domain impact. Everything crosses the domain boundary
// through dice::ExplorationService — including, in the wire tests, real
// serialized bytes.

#include <gtest/gtest.h>

#include "src/dice/distributed.h"

namespace dice {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

// Two domains: "provider" (AS 3) explores; "upstream" (AS 7) is the remote
// domain reached through the provider's exploratory messages.
class DistributedFixture : public ::testing::Test {
 protected:
  DistributedFixture() : network_(&loop_) {
    // Upstream router: peers with the provider (node 2), accepts everything
    // except a guarded prefix it filters.
    bgp::RouterConfig upstream;
    upstream.name = "upstream";
    upstream.local_as = 7;
    upstream.router_id = *bgp::Ipv4Address::Parse("10.0.0.7");
    bgp::PrefixList guarded;
    guarded.name = "guarded";
    guarded.entries.push_back(bgp::PrefixListEntry{P("198.51.100.0/24"), 0, 32});
    EXPECT_TRUE(upstream.policies.AddPrefixList(std::move(guarded)).ok());
    bgp::Filter filter;
    filter.name = "block-guarded";
    bgp::FilterTerm deny;
    bgp::Match m;
    m.kind = bgp::MatchKind::kPrefixInList;
    m.list_name = "guarded";
    deny.matches.push_back(m);
    bgp::Action reject;
    reject.kind = bgp::ActionKind::kReject;
    deny.actions.push_back(reject);
    filter.terms.push_back(deny);
    filter.default_accept = true;
    EXPECT_TRUE(upstream.policies.AddFilter(std::move(filter)).ok());
    bgp::NeighborConfig from_provider;
    from_provider.address = *bgp::Ipv4Address::Parse("10.0.0.3");
    from_provider.remote_as = 3;
    from_provider.import_filter = "block-guarded";
    upstream.neighbors.push_back(from_provider);

    upstream_router_ = std::make_unique<bgp::Router>(5, std::move(upstream), &network_);
    network_.AddNode(upstream_router_.get());
    upstream_router_->RegisterPeerNode(*bgp::Ipv4Address::Parse("10.0.0.3"), 2);

    // Pre-existing route at the upstream: a victim prefix with origin 64500.
    upstream_state_victim_ = P("192.0.2.0/24");
    bgp::UpdateMessage install;
    install.attrs.origin = bgp::Origin::kIgp;
    install.attrs.as_path = bgp::AsPath::Sequence({9, 64500});
    install.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.9");
    install.nlri.push_back(upstream_state_victim_);
    // Install directly via the processing core (peer 9 not configured:
    // accept-all default in the service path is not used here — go through
    // the router's state for realism).
    bgp::RouterState& state = upstream_router_->mutable_state_for_test();
    bgp::Route route;
    route.peer = 9;
    route.peer_as = 9;
    route.attrs = install.attrs;
    state.rib.AddRoute(upstream_state_victim_, route);
  }

  // A fresh service over the fixture's upstream router.
  std::unique_ptr<InProcessExplorationService> MakeUpstreamService() {
    return std::make_unique<InProcessExplorationService>("upstream", upstream_router_.get(),
                                                         2);
  }

  net::EventLoop loop_;
  net::Network network_;
  std::unique_ptr<bgp::Router> upstream_router_;
  bgp::Prefix upstream_state_victim_;
};

bgp::UpdateMessage Announce(const char* prefix, std::vector<bgp::AsNumber> path) {
  bgp::UpdateMessage u;
  u.attrs.origin = bgp::Origin::kIgp;
  u.attrs.as_path = bgp::AsPath::Sequence(std::move(path));
  u.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.3");
  u.nlri.push_back(*bgp::Prefix::Parse(prefix));
  return u;
}

// Ships one update in a single-entry batch and returns its NarrowReply — the
// old point-to-point call shape, replayed through the batched API.
NarrowReply One(ExplorationService& service, uint64_t epoch,
                const bgp::UpdateMessage& update) {
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = epoch;
  request.updates.push_back(update);
  StatusOr<ExploratoryBatchReply> reply = service.ExecuteBatch(request);
  EXPECT_TRUE(reply.ok()) << reply.status();
  if (!reply.ok() || reply->replies.size() != 1) {
    return NarrowReply{};
  }
  return reply->replies[0];
}

TEST_F(DistributedFixture, ServiceRequiresCheckpoint) {
  auto service = MakeUpstreamService();
  EXPECT_EQ(service->domain_name(), "upstream");
  EXPECT_EQ(service->clones_made(), 0u);

  // A batch before any checkpoint is a Status error, not a crash.
  ExploratoryBatchRequest request;
  request.updates.push_back(Announce("203.0.113.0/24", {3, 1, 100}));
  StatusOr<ExploratoryBatchReply> reply = service->ExecuteBatch(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DistributedFixture, StaleEpochIsRejected) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  EXPECT_EQ(epoch, 1u);

  // Batches must target the current checkpoint generation.
  ExploratoryBatchRequest stale;
  stale.checkpoint_epoch = epoch;
  stale.updates.push_back(Announce("203.0.113.0/24", {3, 1, 100}));
  uint64_t new_epoch = service->TakeCheckpoint(1);
  EXPECT_EQ(new_epoch, 2u);
  StatusOr<ExploratoryBatchReply> reply = service->ExecuteBatch(stale);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);

  stale.checkpoint_epoch = new_epoch;
  EXPECT_TRUE(service->ExecuteBatch(stale).ok());
}

TEST_F(DistributedFixture, RemoteCloneAcceptsAndReportsNarrowly) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  NarrowReply reply = One(*service, epoch, Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_TRUE(reply.accepted);
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_FALSE(reply.origin_changed) << "prefix was new at the remote";
  EXPECT_EQ(service->clones_made(), 1u);
}

TEST_F(DistributedFixture, RemoteFilterStillApplies) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  NarrowReply reply = One(*service, epoch, Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.accepted) << "the remote's own policy must keep protecting it";
  EXPECT_FALSE(reply.adopted_as_best);
}

TEST_F(DistributedFixture, RemoteDetectsOriginChange) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  // 192.0.2.0/24 exists at the upstream with origin 64500; a shorter-path
  // exploratory announcement with another origin takes over.
  NarrowReply reply = One(*service, epoch, Announce("192.0.2.0/24", {3, 100}));
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_TRUE(reply.origin_changed);
}

TEST_F(DistributedFixture, RejectedExploratoryMessageIsZeroCopy) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  // The guarded prefix is rejected by the remote's import filter: the reply
  // must be computed against the checkpoint directly, with no clone made.
  NarrowReply reply = One(*service, epoch, Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.accepted);
  EXPECT_FALSE(reply.adopted_as_best);
  EXPECT_EQ(reply.would_propagate, 0u);
  EXPECT_EQ(service->clones_made(), 0u) << "a pure reject must not copy any state";
  EXPECT_EQ(service->clones_avoided(), 1u);

  // An accepted exploratory message still materializes a clone.
  One(*service, epoch, Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_EQ(service->clones_made(), 1u);
  EXPECT_EQ(service->clones_avoided(), 1u);
}

TEST_F(DistributedFixture, ZeroCopyRejectStillReportsPreexistingCandidate) {
  // The checkpoint already holds a route learned over the exploring node's
  // session; a *rejected* exploratory announcement for the same prefix must
  // report accepted=true (the pre-existing candidate), exactly as the
  // materialized path would after a no-op ProcessUpdate.
  bgp::RouterState& state = upstream_router_->mutable_state_for_test();
  bgp::Route existing;
  existing.peer = 2;  // the session exploratory messages arrive on
  existing.peer_as = 3;
  bgp::PathAttributes existing_attrs;
  existing_attrs.as_path = bgp::AsPath::Sequence({3, 64501});
  existing.attrs = std::move(existing_attrs);
  state.rib.AddRoute(P("198.51.100.0/24"), existing);

  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  NarrowReply reply = One(*service, epoch, Announce("198.51.100.0/24", {3, 1, 100}));
  EXPECT_TRUE(reply.accepted) << "the checkpoint candidate from this session counts";
  EXPECT_TRUE(reply.adopted_as_best);
  EXPECT_EQ(service->clones_made(), 0u) << "still zero-copy: the reject changed nothing";
}

TEST_F(DistributedFixture, NoOpWithdrawalIsZeroCopy) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(P("203.0.113.0/24"));  // nothing learned from us there
  withdraw.nlri.push_back(P("198.51.100.0/24"));      // and the announcement is filtered
  withdraw.attrs.as_path = bgp::AsPath::Sequence({3, 1, 100});
  NarrowReply reply = One(*service, epoch, withdraw);
  EXPECT_FALSE(reply.accepted);
  EXPECT_EQ(service->clones_made(), 0u);
}

TEST_F(DistributedFixture, RemoteCloneIsIsolatedFromLiveRemote) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  One(*service, epoch, Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_EQ(upstream_router_->rib().BestRoute(P("203.0.113.0/24")), nullptr)
      << "exploratory processing must never touch the remote's live RIB";
}

TEST_F(DistributedFixture, CheckpointIsolatesFromLaterLiveChanges) {
  auto service = MakeUpstreamService();
  uint64_t epoch = service->TakeCheckpoint(0);
  // The live remote changes after the checkpoint...
  bgp::RouterState& state = upstream_router_->mutable_state_for_test();
  bgp::Route route;
  route.peer = 9;
  route.peer_as = 9;
  bgp::PathAttributes route_attrs;
  route_attrs.as_path = bgp::AsPath::Sequence({9, 777});
  route.attrs = std::move(route_attrs);
  state.rib.AddRoute(P("203.0.113.0/24"), route);
  // ...but the clone still sees the checkpoint: the prefix is new there.
  NarrowReply reply = One(*service, epoch, Announce("203.0.113.0/24", {3, 1, 100}));
  EXPECT_FALSE(reply.origin_changed);
}

// --- Batched vs per-message equivalence --------------------------------------

// A mixed workload: accepted, filtered, origin-changing, withdrawal, and
// duplicated updates (the duplicates exercise the per-batch screen cache).
std::vector<bgp::UpdateMessage> MixedUpdates() {
  std::vector<bgp::UpdateMessage> updates;
  updates.push_back(Announce("203.0.113.0/24", {3, 1, 100}));  // accepted, new
  updates.push_back(Announce("198.51.100.0/24", {3, 1, 100}));  // filtered
  updates.push_back(Announce("192.0.2.0/24", {3, 100}));        // origin change
  updates.push_back(Announce("198.51.100.0/24", {3, 1, 100}));  // filtered dup
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(P("203.0.113.0/24"));
  withdraw.nlri.push_back(P("198.51.100.0/24"));
  withdraw.attrs.as_path = bgp::AsPath::Sequence({3, 1, 100});
  updates.push_back(withdraw);
  updates.push_back(Announce("198.51.100.0/24", {3, 1, 100}));  // filtered dup
  return updates;
}

TEST_F(DistributedFixture, BatchedVerdictsMatchPerMessageVerdicts) {
  std::vector<bgp::UpdateMessage> updates = MixedUpdates();

  // (a) the old shape: one update per call.
  auto per_message = MakeUpstreamService();
  uint64_t epoch_a = per_message->TakeCheckpoint(0);
  std::vector<NarrowReply> singles;
  for (const bgp::UpdateMessage& update : updates) {
    singles.push_back(One(*per_message, epoch_a, update));
  }

  // (b) the whole workload in one batch.
  auto batched = MakeUpstreamService();
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = batched->TakeCheckpoint(0);
  request.updates = updates;
  StatusOr<ExploratoryBatchReply> reply = batched->ExecuteBatch(request);
  ASSERT_TRUE(reply.ok()) << reply.status();

  ASSERT_EQ(reply->replies.size(), singles.size());
  for (size_t i = 0; i < singles.size(); ++i) {
    EXPECT_EQ(reply->replies[i], singles[i]) << "verdict diverged at update " << i;
  }
  // The duplicated filtered announcements must have hit the batch-local
  // screen cache instead of re-running ClassifyImport.
  EXPECT_GT(reply->counters.screen_cache_hits, 0u);
  EXPECT_EQ(per_message->clones_made(), batched->clones_made());
  EXPECT_EQ(per_message->clones_avoided(), batched->clones_avoided());
}

TEST_F(DistributedFixture, PureRejectBatchIsZeroCopy) {
  auto service = MakeUpstreamService();
  ExploratoryBatchRequest request;
  request.checkpoint_epoch = service->TakeCheckpoint(0);
  for (int i = 0; i < 8; ++i) {
    request.updates.push_back(Announce("198.51.100.0/24", {3, 1, 100}));
  }
  StatusOr<ExploratoryBatchReply> reply = service->ExecuteBatch(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_GT(reply->counters.clones_avoided, 0u);
  EXPECT_EQ(reply->counters.clones_materialized, 0u);
  EXPECT_EQ(service->clones_made(), 0u) << "a pure-reject batch must not copy any state";
}

// --- DistributedExplorer end-to-end ------------------------------------------

struct ProviderSetup {
  bgp::RouterState state;
  bgp::PeerView customer_view;
};

// Local (provider) state: no customer filter, one victim route present.
ProviderSetup MakeProvider(const char* victim_prefix) {
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "provider";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
  bgp::NeighborConfig customer;
  customer.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  customer.remote_as = 1;
  config->neighbors.push_back(customer);

  ProviderSetup setup;
  setup.state.config = config;
  bgp::Route victim;
  victim.peer = 9;
  victim.peer_as = 9;
  bgp::PathAttributes victim_attrs;
  victim_attrs.origin = bgp::Origin::kIgp;
  victim_attrs.as_path = bgp::AsPath::Sequence({9, 64500});
  victim.attrs = std::move(victim_attrs);
  setup.state.rib.AddRoute(P(victim_prefix), victim);

  setup.customer_view.id = 1;
  setup.customer_view.remote_as = 1;
  setup.customer_view.address = *bgp::Ipv4Address::Parse("10.0.0.1");
  setup.customer_view.established = true;
  return setup;
}

TEST_F(DistributedFixture, SystemWideConfirmationOfLocalLeak) {
  ProviderSetup provider = MakeProvider("192.0.2.0/24");

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  DistributedExplorer dice(options);
  dice.AddChecker(std::make_unique<HijackChecker>());
  dice.AddRemoteService(MakeUpstreamService());
  dice.TakeCheckpoint(provider.state, {provider.customer_view}, 0);

  bgp::UpdateMessage seed = Announce("10.1.7.0/24", {1, 100});
  dice.ExploreSeed(seed, 1);

  ASSERT_FALSE(dice.local_report().detections.empty());
  // All detections ride to the one remote in a single batch.
  EXPECT_EQ(dice.remote_stats().batches_sent, 1u);
  EXPECT_EQ(dice.remote_stats().updates_sent, dice.local_report().detections.size());
  EXPECT_EQ(dice.remote_stats().replies_received, dice.local_report().detections.size());
  EXPECT_EQ(dice.remote_stats().batch_errors, 0u);
  // The upstream has 192.0.2.0/24 too (same victim), so local findings on it
  // must be confirmed system-wide.
  bool confirmed = false;
  for (const SystemWideDetection& sw : dice.system_wide()) {
    if (sw.local.prefix == P("192.0.2.0/24")) {
      confirmed = true;
      EXPECT_EQ(sw.adopting_domains, (std::vector<std::string>{"upstream"}));
    }
  }
  EXPECT_TRUE(confirmed) << "the 192.0.2.0/24 leak must be confirmed by the remote domain";
  // And the remote's live state is untouched.
  EXPECT_EQ(upstream_router_->rib().BestRoute(P("10.1.7.0/24")), nullptr);
}

TEST_F(DistributedFixture, GuardedRemoteNotListedAsAdopting) {
  // The victim here is the prefix the upstream *filters*.
  ProviderSetup provider = MakeProvider("198.51.100.0/24");

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  DistributedExplorer dice(options);
  dice.AddChecker(std::make_unique<HijackChecker>());
  dice.AddRemoteService(MakeUpstreamService());
  dice.TakeCheckpoint(provider.state, {provider.customer_view}, 0);
  dice.ExploreSeed(Announce("10.1.7.0/24", {1, 100}), 1);

  for (const SystemWideDetection& sw : dice.system_wide()) {
    if (sw.local.prefix == P("198.51.100.0/24")) {
      ADD_FAILURE() << "upstream filters this prefix; it cannot be adopting";
    }
  }
}

// The acceptance gate: the same seed explored with (a) the old point-to-point
// call shape (batch_size=1) and (b) full batches must produce identical
// SystemWideDetections, and a wire-round-tripped service must agree too.
TEST_F(DistributedFixture, BatchSizeDoesNotChangeSystemWideDetections) {
  auto explore = [&](std::unique_ptr<ExplorationService> service, size_t batch_size) {
    ProviderSetup provider = MakeProvider("192.0.2.0/24");
    ExplorerOptions options;
    options.concolic.max_runs = 200;
    auto dice = std::make_unique<DistributedExplorer>(options);
    dice->AddChecker(std::make_unique<HijackChecker>());
    dice->AddRemoteService(std::move(service));
    dice->set_remote_batch_size(batch_size);
    dice->TakeCheckpoint(provider.state, {provider.customer_view}, 0);
    dice->ExploreSeed(Announce("10.1.7.0/24", {1, 100}), 1);
    return dice;
  };

  auto single = explore(MakeUpstreamService(), 1);
  auto full = explore(MakeUpstreamService(), 0);
  auto wire = explore(std::make_unique<WireExplorationService>(MakeUpstreamService()), 0);

  ASSERT_FALSE(single->local_report().detections.empty());
  // batch_size=1 is the replayed old shape: one RPC per detection.
  EXPECT_EQ(single->remote_stats().batches_sent,
            single->local_report().detections.size());
  EXPECT_EQ(full->remote_stats().batches_sent, 1u);

  auto same = [](const std::vector<SystemWideDetection>& a,
                 const std::vector<SystemWideDetection>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].local.prefix, b[i].local.prefix);
      EXPECT_EQ(a[i].local.input, b[i].local.input);
      EXPECT_EQ(a[i].adopting_domains, b[i].adopting_domains);
      EXPECT_EQ(a[i].total_spread, b[i].total_spread);
    }
  };
  same(single->system_wide(), full->system_wide());
  same(single->system_wide(), wire->system_wide());
  EXPECT_FALSE(full->system_wide().empty());
}

// Pure-reject exploratory traffic must stay zero-copy through the whole
// batched pipeline (the acceptance criterion's clones_avoided > 0).
TEST_F(DistributedFixture, PureRejectBatchThroughExplorerAvoidsClones) {
  ProviderSetup provider = MakeProvider("198.51.100.0/24");

  for (size_t batch_size : {size_t{1}, size_t{0}}) {
    ExplorerOptions options;
    options.concolic.max_runs = 200;
    DistributedExplorer dice(options);
    dice.AddChecker(std::make_unique<HijackChecker>());
    dice.AddRemoteService(MakeUpstreamService());
    dice.set_remote_batch_size(batch_size);
    dice.TakeCheckpoint(provider.state, {provider.customer_view}, 0);
    dice.ExploreSeed(Announce("10.1.7.0/24", {1, 100}), 1);

    ASSERT_FALSE(dice.local_report().detections.empty());
    // Every detection names the guarded prefix, which the upstream filters:
    // the whole remote confirmation pass must not copy any state.
    EXPECT_GT(dice.remote_stats().counters.clones_avoided, 0u)
        << "batch_size=" << batch_size;
    EXPECT_EQ(dice.remote_stats().counters.clones_materialized, 0u)
        << "batch_size=" << batch_size;
    EXPECT_TRUE(dice.system_wide().empty());
  }
}

// End-to-end through real serialized bytes: the wire service's counters prove
// every request and reply crossed the byte boundary.
TEST_F(DistributedFixture, WireServiceRoundTripsEveryBatch) {
  ProviderSetup provider = MakeProvider("192.0.2.0/24");

  auto wire = std::make_unique<WireExplorationService>(MakeUpstreamService());
  WireExplorationService* wire_ptr = wire.get();

  ExplorerOptions options;
  options.concolic.max_runs = 200;
  DistributedExplorer dice(options);
  dice.AddChecker(std::make_unique<HijackChecker>());
  dice.AddRemoteService(std::move(wire));
  dice.TakeCheckpoint(provider.state, {provider.customer_view}, 0);
  dice.ExploreSeed(Announce("10.1.7.0/24", {1, 100}), 1);

  ASSERT_FALSE(dice.local_report().detections.empty());
  EXPECT_FALSE(dice.system_wide().empty());
  EXPECT_EQ(wire_ptr->rpcs(), dice.remote_stats().batches_sent);
  EXPECT_GT(wire_ptr->rpcs(), 0u);
  EXPECT_GT(wire_ptr->request_bytes(), 0u);
  EXPECT_GT(wire_ptr->reply_bytes(), 0u);
  EXPECT_EQ(dice.remote_stats().batch_errors, 0u);
}

}  // namespace
}  // namespace dice
