// Parallel candidate solving must be invisible to exploration results: for
// every worker count, runs, unique paths, coverage, accept/reject splits,
// and detections are bit-identical to the serial engine — only the wall
// clock and the solver fast-path tallies may differ. Same gate shape as
// ExplorerTest.LazyClonesPreserveResults, applied to the worker pool.
//
// Two workloads: the Fig. 2 topology (bench/topology.h, the paper's
// provider with an erroneous customer filter) and a 256-session provider
// fanout under an adversarial mostly-rejected seed (the steady-state
// import-path posture of bench F1d/F1f). Plus driver-level gates for the
// dfs/bfs strategies and the random-strategy serial fallback, and a
// WorkerPool unit test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "bench/topology.h"
#include "src/dice/explorer.h"
#include "src/sym/concolic.h"
#include "src/util/worker_pool.h"

namespace dice {
namespace {

// --- WorkerPool basics -------------------------------------------------------

TEST(WorkerPoolTest, ExecutesEveryTaskAndDrains) {
  util::WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> counters(64);
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < counters.size(); ++i) {
      pool.Submit([&counters, i] { counters[i].fetch_add(1); });
    }
    pool.Drain();
    for (size_t i = 0; i < counters.size(); ++i) {
      EXPECT_EQ(counters[i].load(), round + 1);
    }
  }
  EXPECT_EQ(pool.tasks_executed(), 3u * counters.size());
}

TEST(WorkerPoolTest, DrainOnEmptyPoolReturnsImmediately) {
  util::WorkerPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.tasks_executed(), 0u);
}

// --- Report comparison helpers ----------------------------------------------

void ExpectIdenticalReports(const ExplorationReport& serial, const ExplorationReport& parallel,
                            const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.concolic.runs, parallel.concolic.runs);
  EXPECT_EQ(serial.concolic.unique_paths, parallel.concolic.unique_paths);
  EXPECT_EQ(serial.concolic.duplicate_paths, parallel.concolic.duplicate_paths);
  EXPECT_EQ(serial.concolic.branches_covered, parallel.concolic.branches_covered);
  EXPECT_EQ(serial.concolic.max_path_depth, parallel.concolic.max_path_depth);
  EXPECT_EQ(serial.concolic.solver_sat, parallel.concolic.solver_sat);
  EXPECT_EQ(serial.runs_accepted, parallel.runs_accepted);
  EXPECT_EQ(serial.runs_rejected, parallel.runs_rejected);
  EXPECT_EQ(serial.intercepted_messages, parallel.intercepted_messages);
  EXPECT_EQ(serial.first_detection_run, parallel.first_detection_run);
  ASSERT_EQ(serial.detections.size(), parallel.detections.size());
  for (size_t i = 0; i < serial.detections.size(); ++i) {
    EXPECT_EQ(serial.detections[i].prefix, parallel.detections[i].prefix);
    EXPECT_EQ(serial.detections[i].new_origin, parallel.detections[i].new_origin);
    EXPECT_EQ(serial.detections[i].old_origin, parallel.detections[i].old_origin);
    EXPECT_EQ(serial.detections[i].input, parallel.detections[i].input);
  }
}

// --- Fig. 2 topology gate ----------------------------------------------------

ExplorationReport ExploreFig2(size_t workers) {
  bench::Fig2Options options;
  options.prefixes = 800;
  options.seed = 1;
  options.misconfig = bench::Misconfig::kErroneousEntry;
  options.filter_entries = 4;
  bench::Fig2 fig2(options);
  fig2.LoadTable();

  ExplorerOptions explorer_options;
  explorer_options.concolic.max_runs = 120;
  explorer_options.solver_workers = workers;
  Explorer explorer(explorer_options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(fig2.provider(), fig2.loop().now());
  explorer.ExploreSeed(fig2.CustomerSeedUpdate(), bench::Fig2::kCustomerNode);
  return explorer.report();
}

TEST(ParallelSolveTest, BitIdenticalOnFig2Topology) {
  ExplorationReport serial = ExploreFig2(0);
  ASSERT_GT(serial.concolic.runs, 1u);
  EXPECT_EQ(serial.concolic.solver_workers, 0u);
  for (size_t workers : {1u, 2u, 8u}) {
    ExplorationReport parallel = ExploreFig2(workers);
    ExpectIdenticalReports(serial, parallel,
                           ("fig2 workers=" + std::to_string(workers)).c_str());
    EXPECT_EQ(parallel.concolic.solver_workers, workers);
    EXPECT_GT(parallel.concolic.solver_tasks_dispatched, 0u)
        << "the pool must actually have been used";
    EXPECT_FALSE(parallel.concolic.solver_cache_shard_hits.empty());
  }
}

// --- 256-session provider workload gate --------------------------------------

// Widens the provider's peering with extra established sessions, each with
// an Adj-RIB-Out entry — the per-clone state shape of a transit router
// (mirrors bench F1d's fanout construction).
void AddFanoutPeers(bgp::RouterState& state, std::vector<bgp::PeerView>& peers, size_t fanout) {
  bgp::PathAttributes advertised;
  advertised.as_path = bgp::AsPath::Sequence({3, 65000});
  advertised.next_hop = *bgp::Ipv4Address::Parse("10.0.0.3");
  bgp::InternedAttrs advertised_interned(std::move(advertised));
  for (size_t i = 0; i < fanout; ++i) {
    bgp::PeerView pv;
    pv.id = static_cast<bgp::PeerId>(1000 + i);
    pv.remote_as = static_cast<bgp::AsNumber>(20000 + (i % 40000));
    pv.address = bgp::Ipv4Address(0x0b000001u + static_cast<uint32_t>(i));
    pv.established = true;
    peers.push_back(pv);
    state.adj_out[pv.id].Insert(*bgp::Prefix::Parse("203.0.113.0/24"), advertised_interned);
  }
}

// Two consecutive explorations (cold then warm shared cache) of an
// adversarial mostly-rejected seed against the wide-fanout provider; returns
// the per-exploration reports.
std::vector<ExplorationReport> ExploreProviderFanout(size_t workers) {
  bench::Fig2Options options;
  options.prefixes = 600;
  options.seed = 2;
  options.misconfig = bench::Misconfig::kErroneousEntry;
  options.filter_entries = 6;
  bench::Fig2 fig2(options);
  fig2.LoadTable();

  bgp::RouterState state = fig2.provider().CheckpointState();
  std::vector<bgp::PeerView> peers = fig2.provider().PeerViews();
  AddFanoutPeers(state, peers, 256);

  ExplorerOptions explorer_options;
  explorer_options.concolic.max_runs = 100;
  explorer_options.solver_workers = workers;
  Explorer explorer(explorer_options);
  explorer.AddChecker(std::make_unique<HijackChecker>());
  explorer.TakeCheckpoint(state, peers, fig2.loop().now());

  bgp::UpdateMessage seed_update;
  seed_update.attrs.origin = bgp::Origin::kIgp;
  seed_update.attrs.as_path = bgp::AsPath::Sequence({1, 17557});
  seed_update.attrs.next_hop = *bgp::Ipv4Address::Parse("10.0.0.1");
  seed_update.nlri.push_back(*bgp::Prefix::Parse("198.51.100.0/24"));

  std::vector<ExplorationReport> reports;
  for (int rep = 0; rep < 2; ++rep) {
    explorer.ExploreSeed(seed_update, bench::Fig2::kCustomerNode);
    reports.push_back(explorer.report());
  }
  return reports;
}

TEST(ParallelSolveTest, BitIdenticalOnProviderFanoutWorkload) {
  std::vector<ExplorationReport> serial = ExploreProviderFanout(0);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_GT(serial[0].concolic.runs, 1u);
  for (size_t workers : {1u, 2u, 8u}) {
    std::vector<ExplorationReport> parallel = ExploreProviderFanout(workers);
    ASSERT_EQ(parallel.size(), 2u);
    for (size_t rep = 0; rep < parallel.size(); ++rep) {
      ExpectIdenticalReports(
          serial[rep], parallel[rep],
          ("fanout workers=" + std::to_string(workers) + " rep=" + std::to_string(rep))
              .c_str());
    }
    EXPECT_GT(parallel[1].concolic.solver_tasks_dispatched, 0u);
  }
}

// --- Driver-level strategy gates ---------------------------------------------

sym::Program MakeBranchyProgram(uint64_t branches) {
  return [branches](sym::Engine& engine) {
    for (uint64_t i = 0; i < branches; ++i) {
      sym::Value x =
          engine.MakeSymbolic("f" + std::to_string(i), 16, 10 * (i + 1), 0, 1000);
      engine.Branch(x > sym::Value(500), i + 1);
    }
  };
}

sym::ConcolicStats ExploreWithStrategy(const char* strategy, size_t workers) {
  sym::ConcolicOptions options;
  options.max_runs = 80;
  options.strategy = strategy;
  options.solver_workers = workers;
  sym::ConcolicDriver driver(options);
  driver.Explore(MakeBranchyProgram(10));
  return driver.stats();
}

TEST(ParallelSolveTest, EveryBatchableStrategyIsBitIdentical) {
  for (const char* strategy : {"generational", "dfs", "bfs"}) {
    SCOPED_TRACE(strategy);
    sym::ConcolicStats serial = ExploreWithStrategy(strategy, 0);
    for (size_t workers : {1u, 2u, 8u}) {
      sym::ConcolicStats parallel = ExploreWithStrategy(strategy, workers);
      EXPECT_EQ(serial.runs, parallel.runs);
      EXPECT_EQ(serial.unique_paths, parallel.unique_paths);
      EXPECT_EQ(serial.duplicate_paths, parallel.duplicate_paths);
      EXPECT_EQ(serial.branches_covered, parallel.branches_covered);
      EXPECT_EQ(serial.solver_sat, parallel.solver_sat);
      EXPECT_EQ(parallel.solver_workers, workers);
    }
  }
}

TEST(ParallelSolveTest, RandomStrategyFallsBackToSerialSolving) {
  // A randomized pick order cannot survive batch-popping (each pop draws
  // rng), so the driver must keep the serial solve path — and still match
  // the serial engine exactly, because it *is* the serial engine.
  sym::ConcolicStats serial = ExploreWithStrategy("random", 0);
  sym::ConcolicStats parallel = ExploreWithStrategy("random", 4);
  EXPECT_EQ(parallel.solver_workers, 0u) << "pool must be declined";
  EXPECT_EQ(parallel.solver_tasks_dispatched, 0u);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.unique_paths, parallel.unique_paths);
  EXPECT_EQ(serial.branches_covered, parallel.branches_covered);
}

TEST(ParallelSolveTest, ModelReuseFallsBackToSerialSolving) {
  // Cross-query model reuse keeps per-solver model lists, so a worker-view
  // solver could answer SAT from a model the serial stream never saw; the
  // driver must decline the pool and stay bit-identical to the serial
  // engine with reuse enabled.
  sym::ConcolicOptions options;
  options.max_runs = 80;
  options.solver.enable_model_reuse = true;
  sym::ConcolicDriver serial_driver(options);
  serial_driver.Explore(MakeBranchyProgram(10));
  options.solver_workers = 4;
  sym::ConcolicDriver parallel_driver(options);
  parallel_driver.Explore(MakeBranchyProgram(10));
  EXPECT_EQ(parallel_driver.stats().solver_workers, 0u) << "pool must be declined";
  EXPECT_EQ(parallel_driver.stats().solver_tasks_dispatched, 0u);
  EXPECT_EQ(serial_driver.stats().runs, parallel_driver.stats().runs);
  EXPECT_EQ(serial_driver.stats().unique_paths, parallel_driver.stats().unique_paths);
  EXPECT_EQ(serial_driver.stats().branches_covered,
            parallel_driver.stats().branches_covered);
}

// An external pool shared across drivers (the Explorer's usage pattern).
TEST(ParallelSolveTest, ExternalPoolSharedAcrossDrivers) {
  util::WorkerPool pool(2);
  sym::ConcolicOptions options;
  options.max_runs = 60;
  sym::ConcolicStats serial;
  {
    sym::ConcolicDriver driver(options);
    driver.Explore(MakeBranchyProgram(8));
    serial = driver.stats();
  }
  for (int round = 0; round < 2; ++round) {
    sym::ConcolicDriver driver(options, /*shared_solver=*/nullptr, &pool);
    driver.Explore(MakeBranchyProgram(8));
    EXPECT_EQ(driver.stats().runs, serial.runs);
    EXPECT_EQ(driver.stats().unique_paths, serial.unique_paths);
    EXPECT_EQ(driver.stats().branches_covered, serial.branches_covered);
    EXPECT_EQ(driver.stats().solver_workers, 2u);
  }
}

}  // namespace
}  // namespace dice
