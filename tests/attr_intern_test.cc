// Tests for the hash-consed PathAttributes table: structural equality must
// mean pointer equality, the table must stay stable under repeated interning,
// and dead attribute sets must be evicted.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/bgp/attr_intern.h"
#include "src/bgp/rib.h"

namespace dice::bgp {
namespace {

PathAttributes SampleAttrs(std::vector<AsNumber> path, uint32_t community_tag = 0) {
  PathAttributes attrs;
  attrs.origin = Origin::kIgp;
  attrs.as_path = AsPath::Sequence(std::move(path));
  attrs.next_hop = *Ipv4Address::Parse("10.0.0.9");
  attrs.local_pref = 150;
  if (community_tag != 0) {
    attrs.communities.push_back(MakeCommunity(65000, static_cast<uint16_t>(community_tag)));
  }
  return attrs;
}

TEST(AttrInternTest, StructuralEqualityIsPointerEquality) {
  InternedAttrs a = SampleAttrs({1, 2, 3});
  InternedAttrs b = SampleAttrs({1, 2, 3});  // built independently
  EXPECT_EQ(a.ptr().get(), b.ptr().get());
  EXPECT_TRUE(a == b);
}

TEST(AttrInternTest, DistinctValuesGetDistinctNodes) {
  InternedAttrs a = SampleAttrs({1, 2, 3});
  InternedAttrs b = SampleAttrs({1, 2, 4});
  InternedAttrs c = SampleAttrs({1, 2, 3}, /*community_tag=*/7);
  EXPECT_NE(a.ptr().get(), b.ptr().get());
  EXPECT_NE(a.ptr().get(), c.ptr().get());
  EXPECT_FALSE(a == b);
  // The payloads really differ (equality is not vacuously false).
  EXPECT_FALSE(*a == *b);
}

TEST(AttrInternTest, DefaultHandleIsInternedEmptySet) {
  InternedAttrs a;
  InternedAttrs b;
  EXPECT_EQ(a.ptr().get(), b.ptr().get());
  EXPECT_TRUE(*a == PathAttributes{});
  EXPECT_TRUE(a == InternedAttrs(PathAttributes{}));
}

TEST(AttrInternTest, TableStableUnderRepeatedInterning) {
  InternedAttrs keep = SampleAttrs({64500, 64501});
  AttrInternStats before = AttrInternTableStats();
  for (int i = 0; i < 100; ++i) {
    InternedAttrs again = SampleAttrs({64500, 64501});
    EXPECT_EQ(again.ptr().get(), keep.ptr().get());
  }
  AttrInternStats after = AttrInternTableStats();
  EXPECT_EQ(after.live_entries, before.live_entries) << "re-interning must not grow the table";
  EXPECT_GE(after.hits, before.hits + 100);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(AttrInternTest, DeadEntriesAreEvicted) {
  AttrInternStats before = AttrInternTableStats();
  {
    InternedAttrs transient = SampleAttrs({59999, 59998, 59997});  // unique to this test
    EXPECT_EQ(AttrInternTableStats().live_entries, before.live_entries + 1);
  }
  EXPECT_EQ(AttrInternTableStats().live_entries, before.live_entries)
      << "the last handle dying must erase the table entry";
}

TEST(AttrInternTest, RouteCopiesShareTheNode) {
  Route route;
  route.peer = 1;
  route.peer_as = 65000;
  route.attrs = SampleAttrs({65000, 64496});
  Route copy = route;
  EXPECT_EQ(copy.attrs.ptr().get(), route.attrs.ptr().get());
  EXPECT_TRUE(copy == route);
}

TEST(AttrInternTest, HeapBytesCountOwnedStorage) {
  PathAttributes empty;
  PathAttributes big = SampleAttrs({1, 2, 3, 4, 5, 6}, /*community_tag=*/3);
  EXPECT_EQ(AttrsHeapBytes(empty), sizeof(PathAttributes));
  EXPECT_GT(AttrsHeapBytes(big),
            sizeof(PathAttributes) + 6 * sizeof(AsNumber))
      << "AS path elements and communities must be charged";
}

// --- Concurrent interning (the lock-striped table behind parallel solving) ---

TEST(AttrInternTest, ConcurrentInterningAgreesOnPointerIdentity) {
  // N threads interning the same overlapping attribute sets must converge on
  // one node per distinct value: cross-thread pointer equality, and the live
  // count grows by exactly the distinct-value count. AS numbers 58xxx keep
  // this universe disjoint from every other test's attribute sets.
  constexpr size_t kThreads = 8;
  constexpr uint32_t kValues = 64;
  const AttrInternStats before = AttrInternTableStats();
  std::vector<std::vector<InternedAttrs>> built(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &built] {
        built[t].reserve(kValues);
        for (uint32_t v = 0; v < kValues; ++v) {
          built[t].push_back(
              SampleAttrs({58000, static_cast<AsNumber>(58001 + v)}, /*community_tag=*/v + 1));
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (size_t t = 1; t < kThreads; ++t) {
    ASSERT_EQ(built[t].size(), kValues);
    for (uint32_t v = 0; v < kValues; ++v) {
      EXPECT_EQ(built[0][v].ptr().get(), built[t][v].ptr().get())
          << "thread " << t << " value " << v << " must share the interned node";
    }
  }
  AttrInternStats held = AttrInternTableStats();
  EXPECT_EQ(held.live_entries, before.live_entries + kValues)
      << "no duplicated and no lost entries";
  built.clear();
  EXPECT_EQ(AttrInternTableStats().live_entries, before.live_entries)
      << "released attribute sets must be evicted";
}

TEST(AttrInternTest, ConcurrentChurnLeavesNoResidue) {
  // Intern-and-drop churn across threads exercises the expired-entry /
  // deleter race (a set dying on one thread while another re-interns it).
  // The table must end exactly where it started. (Run under TSan in CI.)
  constexpr size_t kThreads = 8;
  const size_t before = AttrInternTableStats().live_entries;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint32_t i = 0; i < 300; ++i) {
        InternedAttrs transient =
            SampleAttrs({57000, static_cast<AsNumber>(57001 + (i % 16))});
        (void)transient;  // dropped immediately: exercises the deleter path
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(AttrInternTableStats().live_entries, before);
}

}  // namespace
}  // namespace dice::bgp
