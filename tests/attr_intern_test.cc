// Tests for the hash-consed PathAttributes table: structural equality must
// mean pointer equality, the table must stay stable under repeated interning,
// and dead attribute sets must be evicted.

#include <gtest/gtest.h>

#include "src/bgp/attr_intern.h"
#include "src/bgp/rib.h"

namespace dice::bgp {
namespace {

PathAttributes SampleAttrs(std::vector<AsNumber> path, uint32_t community_tag = 0) {
  PathAttributes attrs;
  attrs.origin = Origin::kIgp;
  attrs.as_path = AsPath::Sequence(std::move(path));
  attrs.next_hop = *Ipv4Address::Parse("10.0.0.9");
  attrs.local_pref = 150;
  if (community_tag != 0) {
    attrs.communities.push_back(MakeCommunity(65000, static_cast<uint16_t>(community_tag)));
  }
  return attrs;
}

TEST(AttrInternTest, StructuralEqualityIsPointerEquality) {
  InternedAttrs a = SampleAttrs({1, 2, 3});
  InternedAttrs b = SampleAttrs({1, 2, 3});  // built independently
  EXPECT_EQ(a.ptr().get(), b.ptr().get());
  EXPECT_TRUE(a == b);
}

TEST(AttrInternTest, DistinctValuesGetDistinctNodes) {
  InternedAttrs a = SampleAttrs({1, 2, 3});
  InternedAttrs b = SampleAttrs({1, 2, 4});
  InternedAttrs c = SampleAttrs({1, 2, 3}, /*community_tag=*/7);
  EXPECT_NE(a.ptr().get(), b.ptr().get());
  EXPECT_NE(a.ptr().get(), c.ptr().get());
  EXPECT_FALSE(a == b);
  // The payloads really differ (equality is not vacuously false).
  EXPECT_FALSE(*a == *b);
}

TEST(AttrInternTest, DefaultHandleIsInternedEmptySet) {
  InternedAttrs a;
  InternedAttrs b;
  EXPECT_EQ(a.ptr().get(), b.ptr().get());
  EXPECT_TRUE(*a == PathAttributes{});
  EXPECT_TRUE(a == InternedAttrs(PathAttributes{}));
}

TEST(AttrInternTest, TableStableUnderRepeatedInterning) {
  InternedAttrs keep = SampleAttrs({64500, 64501});
  AttrInternStats before = AttrInternTableStats();
  for (int i = 0; i < 100; ++i) {
    InternedAttrs again = SampleAttrs({64500, 64501});
    EXPECT_EQ(again.ptr().get(), keep.ptr().get());
  }
  AttrInternStats after = AttrInternTableStats();
  EXPECT_EQ(after.live_entries, before.live_entries) << "re-interning must not grow the table";
  EXPECT_GE(after.hits, before.hits + 100);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(AttrInternTest, DeadEntriesAreEvicted) {
  AttrInternStats before = AttrInternTableStats();
  {
    InternedAttrs transient = SampleAttrs({59999, 59998, 59997});  // unique to this test
    EXPECT_EQ(AttrInternTableStats().live_entries, before.live_entries + 1);
  }
  EXPECT_EQ(AttrInternTableStats().live_entries, before.live_entries)
      << "the last handle dying must erase the table entry";
}

TEST(AttrInternTest, RouteCopiesShareTheNode) {
  Route route;
  route.peer = 1;
  route.peer_as = 65000;
  route.attrs = SampleAttrs({65000, 64496});
  Route copy = route;
  EXPECT_EQ(copy.attrs.ptr().get(), route.attrs.ptr().get());
  EXPECT_TRUE(copy == route);
}

TEST(AttrInternTest, HeapBytesCountOwnedStorage) {
  PathAttributes empty;
  PathAttributes big = SampleAttrs({1, 2, 3, 4, 5, 6}, /*community_tag=*/3);
  EXPECT_EQ(AttrsHeapBytes(empty), sizeof(PathAttributes));
  EXPECT_GT(AttrsHeapBytes(big),
            sizeof(PathAttributes) + 6 * sizeof(AsNumber))
      << "AS path elements and communities must be charged";
}

}  // namespace
}  // namespace dice::bgp
