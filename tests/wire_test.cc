// Tests for the RFC 4271 wire codec: golden encodings, round-trip properties
// over generated messages, and decode-error classification.

#include <gtest/gtest.h>

#include "src/bgp/wire.h"
#include "src/util/rng.h"

namespace dice::bgp {
namespace {

UpdateMessage SampleUpdate() {
  UpdateMessage u;
  u.attrs.origin = Origin::kIgp;
  u.attrs.as_path = AsPath::Sequence({65001, 65002});
  u.attrs.next_hop = *Ipv4Address::Parse("10.0.0.1");
  u.nlri.push_back(*Prefix::Parse("203.0.113.0/24"));
  return u;
}

TEST(WireTest, KeepaliveGolden) {
  Bytes b = EncodeKeepalive();
  ASSERT_EQ(b.size(), kHeaderSize);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(b[i], 0xff);
  }
  EXPECT_EQ(b[16], 0x00);
  EXPECT_EQ(b[17], 19);
  EXPECT_EQ(b[18], 4);  // type KEEPALIVE
}

TEST(WireTest, OpenRoundTrip) {
  OpenMessage open;
  open.my_as = 64496;
  open.hold_time = 180;
  open.bgp_id = *Ipv4Address::Parse("192.0.2.33");
  auto decoded = Decode(EncodeOpen(open));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<OpenMessage>(*decoded));
  EXPECT_EQ(std::get<OpenMessage>(*decoded), open);
}

TEST(WireTest, NotificationRoundTrip) {
  NotificationMessage n;
  n.code = NotificationCode::kUpdateMessageError;
  n.subcode = 5;
  n.data = {1, 2, 3};
  auto decoded = Decode(EncodeNotification(n));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<NotificationMessage>(*decoded), n);
}

TEST(WireTest, UpdateRoundTripBasic) {
  UpdateMessage u = SampleUpdate();
  auto decoded = Decode(EncodeUpdate(u));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(WireTest, UpdateRoundTripAllAttributes) {
  UpdateMessage u = SampleUpdate();
  u.attrs.origin = Origin::kIncomplete;
  u.attrs.med = 77;
  u.attrs.local_pref = 250;
  u.attrs.atomic_aggregate = true;
  u.attrs.aggregator = Aggregator{65010, *Ipv4Address::Parse("198.51.100.9")};
  u.attrs.communities = {MakeCommunity(65001, 42), kCommunityNoExport};
  u.withdrawn.push_back(*Prefix::Parse("198.51.100.0/24"));
  auto decoded = Decode(EncodeUpdate(u));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(WireTest, WithdrawOnlyUpdateNeedsNoMandatoryAttrs) {
  UpdateMessage u;
  u.withdrawn.push_back(*Prefix::Parse("10.0.0.0/8"));
  auto decoded = Decode(EncodeUpdate(u));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(WireTest, AsSetRoundTrip) {
  UpdateMessage u = SampleUpdate();
  u.attrs.as_path = AsPath(std::vector<AsSegment>{
      AsSegment{AsSegmentType::kAsSequence, {65001}},
      AsSegment{AsSegmentType::kAsSet, {65002, 65003}}});
  auto decoded = Decode(EncodeUpdate(u));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
}

TEST(WireTest, ZeroLengthPrefixEncodesAsOneByte) {
  ByteWriter w;
  EncodePrefix(w, *Prefix::Parse("0.0.0.0/0"));
  EXPECT_EQ(w.bytes(), Bytes{0});
}

TEST(WireTest, PrefixEncodingIsMinimal) {
  ByteWriter w;
  EncodePrefix(w, *Prefix::Parse("10.0.0.0/8"));
  EXPECT_EQ(w.bytes(), (Bytes{8, 10}));
  ByteWriter w2;
  EncodePrefix(w2, *Prefix::Parse("203.0.113.128/25"));
  EXPECT_EQ(w2.bytes(), (Bytes{25, 203, 0, 113, 128}));
}

TEST(WireTest, DecodePrefixRoundTripsSingles) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "203.0.113.128/25", "192.0.2.1/32"}) {
    Prefix prefix = *Prefix::Parse(text);
    ByteWriter w;
    EncodePrefix(w, prefix);
    ByteReader r(w.bytes());
    auto decoded = DecodePrefix(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, prefix);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, DecodePrefixRejectsBadLengthAndTruncation) {
  Bytes too_long{33, 1, 2, 3, 4, 5};
  ByteReader r1(too_long);
  EXPECT_FALSE(DecodePrefix(r1).ok());

  Bytes truncated{24, 203, 0};  // /24 needs three address bytes
  ByteReader r2(truncated);
  EXPECT_FALSE(DecodePrefix(r2).ok());
}

// --- decode error classification ---------------------------------------------

TEST(WireErrorTest, BadMarkerRejected) {
  Bytes b = EncodeKeepalive();
  b[3] = 0x00;
  auto decoded = Decode(b);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("marker"), std::string::npos);
}

TEST(WireErrorTest, LengthMismatchRejected) {
  Bytes b = EncodeKeepalive();
  b.push_back(0);  // buffer longer than the length field claims
  EXPECT_FALSE(Decode(b).ok());
}

TEST(WireErrorTest, ShortBufferRejected) {
  Bytes b{0xff, 0xff, 0xff};
  EXPECT_FALSE(Decode(b).ok());
}

TEST(WireErrorTest, BadTypeRejected) {
  Bytes b = EncodeKeepalive();
  b[18] = 99;
  EXPECT_FALSE(Decode(b).ok());
}

TEST(WireErrorTest, KeepaliveWithBodyRejected) {
  Bytes b = EncodeKeepalive();
  b.push_back(1);
  b[17] = 20;  // fix length field so only the body-size rule fires
  EXPECT_FALSE(Decode(b).ok());
}

TEST(WireErrorTest, BadPrefixLengthRejected) {
  UpdateMessage u = SampleUpdate();
  Bytes b = EncodeUpdate(u);
  // NLRI starts right after attrs; its first byte is the prefix length (24).
  // Find and corrupt it: the last 4 bytes are [24, 203, 0, 113].
  b[b.size() - 4] = 33;
  auto decoded = Decode(b);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("prefix length"), std::string::npos);
}

TEST(WireErrorTest, MissingMandatoryAttributeRejected) {
  // Hand-build an UPDATE with NLRI but no attributes.
  ByteWriter w;
  for (int i = 0; i < 16; ++i) {
    w.PutU8(0xff);
  }
  w.PutU16(0);
  w.PutU8(2);   // UPDATE
  w.PutU16(0);  // no withdrawn
  w.PutU16(0);  // no attributes
  w.PutU8(8);   // NLRI: 10.0.0.0/8
  w.PutU8(10);
  w.PatchU16(16, static_cast<uint16_t>(w.size()));
  auto decoded = Decode(w.bytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("ORIGIN"), std::string::npos);
}

TEST(WireErrorTest, BadOriginValueRejected) {
  UpdateMessage u = SampleUpdate();
  Bytes b = EncodeUpdate(u);
  // ORIGIN is the first attribute: flags(0x40) type(1) len(1) value.
  // Locate it: withdrawn_len(2) at 19, attrs_len(2) at 21, attrs at 23.
  ASSERT_EQ(b[23], 0x40);
  ASSERT_EQ(b[24], 1);
  b[26] = 9;  // invalid origin value
  auto decoded = Decode(b);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("ORIGIN"), std::string::npos);
}

TEST(WireErrorTest, UnknownWellKnownAttributeRejected) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) {
    w.PutU8(0xff);
  }
  w.PutU16(0);
  w.PutU8(2);
  w.PutU16(0);
  w.PutU16(3);   // attrs length
  w.PutU8(0x40); // well-known flags
  w.PutU8(99);   // unknown type
  w.PutU8(0);
  w.PatchU16(16, static_cast<uint16_t>(w.size()));
  auto decoded = Decode(w.bytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unrecognized"), std::string::npos);
}

TEST(WireErrorTest, UnknownOptionalTransitiveAttributeKept) {
  UpdateMessage u = SampleUpdate();
  u.attrs.unknown.push_back(
      UnknownAttribute{static_cast<uint8_t>(kAttrFlagOptional | kAttrFlagTransitive |
                                            kAttrFlagPartial),
                       200,
                       {0xde, 0xad}});
  auto decoded = Decode(EncodeUpdate(u));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto& got = std::get<UpdateMessage>(*decoded);
  ASSERT_EQ(got.attrs.unknown.size(), 1u);
  EXPECT_EQ(got.attrs.unknown[0].type, 200);
  EXPECT_EQ(got.attrs.unknown[0].value, (std::vector<uint8_t>{0xde, 0xad}));
}

TEST(WireErrorTest, OpenBadVersionRejected) {
  OpenMessage open;
  open.my_as = 1;
  Bytes b = EncodeOpen(open);
  b[19] = 3;  // version byte
  EXPECT_FALSE(Decode(b).ok());
}

// --- round-trip property over generated updates -------------------------------

class WireRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireRoundTripProperty, RandomUpdatesRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    UpdateMessage u;
    size_t nlri = 1 + rng.NextBelow(5);
    for (size_t i = 0; i < nlri; ++i) {
      u.nlri.push_back(Prefix::Make(Ipv4Address(rng.NextU32()),
                                    static_cast<uint8_t>(rng.NextBelow(33))));
    }
    size_t withdrawn = rng.NextBelow(3);
    for (size_t i = 0; i < withdrawn; ++i) {
      u.withdrawn.push_back(Prefix::Make(Ipv4Address(rng.NextU32()),
                                         static_cast<uint8_t>(rng.NextBelow(33))));
    }
    size_t path_len = 1 + rng.NextBelow(6);
    std::vector<AsNumber> path;
    for (size_t i = 0; i < path_len; ++i) {
      path.push_back(static_cast<AsNumber>(1 + rng.NextBelow(0xfffe)));
    }
    u.attrs.as_path = AsPath::Sequence(std::move(path));
    u.attrs.origin = static_cast<Origin>(rng.NextBelow(3));
    u.attrs.next_hop = Ipv4Address(rng.NextU32());
    if (rng.NextBool(0.5)) {
      u.attrs.med = rng.NextU32();
    }
    if (rng.NextBool(0.3)) {
      u.attrs.local_pref = rng.NextU32();
    }
    size_t comms = rng.NextBelow(4);
    for (size_t i = 0; i < comms; ++i) {
      u.attrs.communities.push_back(rng.NextU32());
    }
    auto decoded = Decode(EncodeUpdate(u));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(std::get<UpdateMessage>(*decoded), u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dice::bgp
