// Tests for checkpointing: clone isolation and copy-on-write page accounting.

#include <gtest/gtest.h>

#include "src/checkpoint/checkpoint.h"
#include "src/trace/trace.h"

namespace dice::checkpoint {
namespace {

bgp::Prefix P(const char* s) { return *bgp::Prefix::Parse(s); }

bgp::PathAttributes AttrsWithPath(std::vector<bgp::AsNumber> path) {
  bgp::PathAttributes attrs;
  attrs.as_path = bgp::AsPath::Sequence(std::move(path));
  return attrs;
}

bgp::RouterState MakeState(size_t prefixes, uint64_t seed = 1) {
  bgp::RouterState state;
  auto config = std::make_shared<bgp::RouterConfig>();
  config->name = "r";
  config->local_as = 3;
  config->router_id = *bgp::Ipv4Address::Parse("10.0.0.3");
  state.config = config;

  trace::TraceGeneratorOptions options;
  options.seed = seed;
  options.prefix_count = prefixes;
  trace::TraceGenerator gen(options);
  for (const auto& entry : gen.table()) {
    bgp::Route route;
    route.peer = 1;
    route.peer_as = 65000;
    route.attrs = entry.attrs;
    state.rib.AddRoute(entry.prefix, std::move(route));
  }
  return state;
}

TEST(CheckpointTest, CloneRequiresCheckpoint) {
  CheckpointManager mgr;
  EXPECT_FALSE(mgr.HasCheckpoint());
}

TEST(CheckpointTest, CloneIsIsolatedFromCheckpointAndLive) {
  bgp::RouterState live = MakeState(200);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);

  bgp::RouterState clone = mgr.Clone();
  bgp::Route route;
  route.peer = 9;
  route.peer_as = 64999;
  route.attrs = AttrsWithPath({64999});
  clone.rib.AddRoute(P("192.0.2.0/24"), route);

  EXPECT_NE(clone.rib.BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(mgr.current().state.rib.BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(live.rib.BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(mgr.clones_made(), 1u);
}

TEST(CheckpointTest, FreshCheckpointSharesEverything) {
  bgp::RouterState live = MakeState(500);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  MemoryStats stats = mgr.CheckpointSharing(live);
  EXPECT_EQ(stats.unique_nodes, 0u);
  EXPECT_EQ(stats.unique_pages, 0u);
  EXPECT_GT(stats.total_nodes, 500u);
  EXPECT_EQ(stats.UniquePageFraction(), 0.0);
}

TEST(CheckpointTest, LiveMutationDirtiesFewPages) {
  bgp::RouterState live = MakeState(2000);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);

  // The live router keeps processing a handful of updates after the
  // checkpoint — the situation behind the paper's 3.45% figure.
  for (int i = 0; i < 20; ++i) {
    bgp::Route route;
    route.peer = 1;
    route.peer_as = 65000;
    route.attrs = AttrsWithPath({65000, static_cast<bgp::AsNumber>(100 + i)});
    live.rib.AddRoute(P(("10.200." + std::to_string(i) + ".0/24").c_str()), route);
  }
  MemoryStats stats = mgr.CheckpointSharing(live);
  EXPECT_GT(stats.unique_nodes, 0u);
  EXPECT_LT(stats.UniquePageFraction(), 0.25)
      << "checkpoint must stay mostly shared: " << stats.ToString();
}

TEST(CheckpointTest, CloneSharingGrowsWithWrites) {
  bgp::RouterState live = MakeState(2000);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);

  bgp::RouterState clone = mgr.Clone();
  MemoryStats before = mgr.CloneSharing(clone);
  EXPECT_EQ(before.unique_nodes, 0u);

  for (int i = 0; i < 50; ++i) {
    bgp::Route route;
    route.peer = 7;
    route.peer_as = 64000;
    route.attrs = AttrsWithPath({64000});
    clone.rib.AddRoute(P(("172.16." + std::to_string(i) + ".0/24").c_str()), route);
  }
  MemoryStats after = mgr.CloneSharing(clone);
  EXPECT_GT(after.unique_nodes, before.unique_nodes);
  EXPECT_LT(after.UniquePageFraction(), 0.5);
}

TEST(CheckpointTest, AdjOutTriesCountedInSharing) {
  bgp::RouterState live = MakeState(300);
  live.adj_out[5].Insert(P("10.0.0.0/8"), bgp::PathAttributes{});
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  bgp::RouterState clone = mgr.Clone();
  clone.adj_out[5].Insert(P("11.0.0.0/8"), bgp::PathAttributes{});
  MemoryStats stats = mgr.CloneSharing(clone);
  EXPECT_GT(stats.unique_nodes, 0u);
}

TEST(CheckpointTest, TakeReplacesCurrent) {
  bgp::RouterState live = MakeState(100);
  CheckpointManager mgr;
  mgr.Take(live, {}, 10);
  EXPECT_EQ(mgr.current().taken_at, 10u);
  EXPECT_EQ(mgr.current().id, 0u);
  mgr.Take(live, {}, 20);
  EXPECT_EQ(mgr.current().taken_at, 20u);
  EXPECT_EQ(mgr.current().id, 1u);
  EXPECT_EQ(mgr.checkpoints_taken(), 2u);
}

TEST(CheckpointTest, PeersCapturedInCheckpoint) {
  bgp::RouterState live = MakeState(10);
  bgp::PeerView peer;
  peer.id = 4;
  peer.remote_as = 65001;
  peer.established = true;
  CheckpointManager mgr;
  mgr.Take(live, {peer}, 0);
  ASSERT_EQ(mgr.current().peers.size(), 1u);
  EXPECT_EQ(mgr.current().peers[0].id, 4u);
}

// --- Lazy clones (CloneHandle) -----------------------------------------------

TEST(CloneHandleTest, ReadsCheckpointWithoutCopying) {
  bgp::RouterState live = MakeState(300);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);

  CloneHandle handle = mgr.CloneLazy();
  EXPECT_FALSE(handle.materialized());
  EXPECT_EQ(handle.read().rib.PrefixCount(), 300u);
  EXPECT_EQ(&handle.read(), &mgr.current().state)
      << "an unmaterialized handle reads the checkpoint state itself";
  EXPECT_FALSE(handle.materialized()) << "reading must never materialize";
  EXPECT_EQ(mgr.clones_made(), 0u) << "nothing was copied";
  EXPECT_EQ(mgr.lazy_clones_issued(), 1u);
  EXPECT_EQ(mgr.clones_avoided(), 1u);
  EXPECT_EQ(mgr.bytes_cloned(), 0u);
}

TEST(CloneHandleTest, WritesNeverReachTheCheckpoint) {
  bgp::RouterState live = MakeState(300);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);

  CloneHandle handle = mgr.CloneLazy();
  bgp::Route route;
  route.peer = 9;
  route.peer_as = 64999;
  route.attrs = AttrsWithPath({64999});
  handle.Mutable().rib.AddRoute(P("192.0.2.0/24"), route);

  EXPECT_TRUE(handle.materialized());
  EXPECT_NE(handle.read().rib.BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(mgr.current().state.rib.BestRoute(P("192.0.2.0/24")), nullptr)
      << "isolation: the checkpoint must not see the clone's write";
  EXPECT_EQ(live.rib.BestRoute(P("192.0.2.0/24")), nullptr);
  EXPECT_EQ(mgr.clones_materialized(), 1u);
  EXPECT_EQ(mgr.clones_avoided(), 0u);
  EXPECT_EQ(mgr.clones_made(), 1u) << "a materialization is a clone";
  EXPECT_GT(mgr.bytes_cloned(), 0u);
}

TEST(CloneHandleTest, MaterializeIsIdempotent) {
  bgp::RouterState live = MakeState(50);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  CloneHandle handle = mgr.CloneLazy();
  bgp::RouterState* first = &handle.Mutable();
  bgp::RouterState* second = &handle.Mutable();
  EXPECT_EQ(first, second);
  EXPECT_EQ(mgr.clones_materialized(), 1u);
}

TEST(CloneHandleTest, BorrowedHandleAddressesTheCallerState) {
  bgp::RouterState state = MakeState(20);
  CloneHandle handle(&state);
  EXPECT_TRUE(handle.materialized());
  EXPECT_EQ(&handle.read(), &state);
  EXPECT_EQ(&handle.Mutable(), &state);
}

// --- Corrected byte accounting (routes + interned attributes) ----------------

TEST(MemoryStatsTest, BytesIncludeRouteVectorsAndAttrs) {
  bgp::RouterState live = MakeState(500);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  MemoryStats stats = mgr.CheckpointSharing(live);
  // kNodeBytes alone understates the state: route vectors and interned
  // attribute sets own real heap that the page accounting must see.
  EXPECT_GT(stats.attr_bytes_total, 0u);
  EXPECT_GT(stats.total_bytes,
            stats.total_nodes * bgp::PrefixTrie<bgp::RibEntry>::kNodeBytes)
      << stats.ToString();
  // Fully shared state: nothing unique, including attribute storage.
  EXPECT_EQ(stats.unique_bytes, 0u);
  EXPECT_EQ(stats.attr_bytes_unique, 0u);
}

TEST(MemoryStatsTest, NewAttrsInCloneAreUniqueBytes) {
  bgp::RouterState live = MakeState(500);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  bgp::RouterState clone = mgr.Clone();
  bgp::Route route;
  route.peer = 7;
  route.peer_as = 64000;
  route.attrs = AttrsWithPath({64000, 64001, 64002});  // not in the table state
  clone.rib.AddRoute(P("172.16.0.0/24"), route);

  MemoryStats stats = mgr.CloneSharing(clone);
  EXPECT_GT(stats.unique_nodes, 0u);
  EXPECT_GT(stats.attr_bytes_unique, 0u) << "the new path is storage only the clone has";
  EXPECT_GE(stats.unique_bytes,
            stats.unique_nodes * bgp::PrefixTrie<bgp::RibEntry>::kNodeBytes +
                stats.attr_bytes_unique + sizeof(bgp::Route))
      << "unique bytes must cover node structs, the route vector, and the new "
         "attribute set: "
      << stats.ToString();
}

TEST(MemoryStatsTest, SharedInternedAttrsAreNotUnique) {
  bgp::RouterState live = MakeState(500);
  CheckpointManager mgr;
  mgr.Take(live, {}, 0);
  bgp::RouterState clone = mgr.Clone();
  // Re-announce an existing route's attributes under a brand-new prefix: the
  // trie nodes are unique to the clone, but the attribute storage is the
  // same interned node the checkpoint already references.
  const bgp::Route* donor = nullptr;
  clone.rib.Walk([&](const bgp::Prefix&, const bgp::RibEntry& entry) {
    donor = &entry.routes[0];
    return false;
  });
  ASSERT_NE(donor, nullptr);
  bgp::Route route;
  route.peer = 7;
  route.peer_as = 64000;
  route.attrs = donor->attrs;
  clone.rib.AddRoute(P("172.16.1.0/24"), route);

  MemoryStats stats = mgr.CloneSharing(clone);
  EXPECT_GT(stats.unique_nodes, 0u);
  EXPECT_EQ(stats.attr_bytes_unique, 0u)
      << "attribute storage shared with the checkpoint must not count as "
         "unique: "
      << stats.ToString();
}

TEST(MemoryStatsTest, PageMathRoundsUp) {
  MemoryStats stats;
  stats.total_bytes = kPageSize + 1;
  stats.unique_bytes = 1;
  stats.total_pages = (stats.total_bytes + kPageSize - 1) / kPageSize;
  stats.unique_pages = (stats.unique_bytes + kPageSize - 1) / kPageSize;
  EXPECT_EQ(stats.total_pages, 2u);
  EXPECT_EQ(stats.unique_pages, 1u);
}

}  // namespace
}  // namespace dice::checkpoint
